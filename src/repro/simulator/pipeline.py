"""Epoch-time simulation of multi-GPU out-of-core GNN training.

:class:`EpochSimulator` reproduces the paper's runtime (Section 3.1):
data-parallel training with the training vertices evenly partitioned
across GPUs, each GPU pipelining **sampling** (adjacency reads from CPU
memory + GPU-side sampling kernels), **feature extraction** (page reads
from SSDs / CPU caches / peer GPU caches over the PCIe fabric) and
**model training** (the analytic compute-cost model), with a gradient
all-reduce barrier per step.

Per simulated step, every GPU's feature demand is derived from a *real*
sampled mini-batch mapped through the *actual data placement*; all
transfers contend on the topology under max-min fair sharing
(:mod:`repro.simulator.bandwidth`).  In a 3-stage pipeline the steady-
state step time is the slowest stage, plus the non-overlapped gradient
synchronisation; the epoch time extrapolates the mean over
``sample_batches`` simulated steps.

Everything runs at the dataset's reduced scale; results carry both the
simulated and the rescaled ("paper") epoch time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.ddak import DataPlacement
from repro.core.flowmodel import TrafficDemand
from repro.core.topology import NodeKind, Topology
from repro.gnn.costmodel import BatchShape, ComputeCostModel, allreduce_seconds
from repro.graphs.datasets import ScaledDataset
from repro.graphs.partition import partition_random
from repro.hardware.machines import MachineSpec
from repro.sampling.neighbor import sample_batch
from repro.simulator.bandwidth import Flow, progressive_fill
from repro.simulator.iostack import (
    IoStackConfig,
    RetryPolicy,
    effective_read_bw,
)
from repro.simulator.routing import Router, egress_key
from repro.simulator.traffic import TrafficAccount
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs

#: Suffix marking a demand source as a failed drive's replica-recovery
#: path: reads against ``f"{ssd}{_RECOVERY_SUFFIX}"`` route over the
#: bounded ``("recovery", ssd)`` resource instead of the dead drive.
_RECOVERY_SUFFIX = "!recovery"


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the epoch simulator."""

    fanouts: Tuple[int, ...] = (25, 10)
    model_name: str = "graphsage"  # "graphsage" | "gat"
    num_classes: int = 16
    #: Steps actually simulated; the epoch extrapolates their mean.
    sample_batches: int = 10
    #: Adjacency bytes read from CPU memory per sampled edge (CSR
    #: neighbour lookup + wash: two 8-byte words).
    topo_read_bytes_per_edge: float = 16.0
    #: Multiplier on external feature bytes — systems without cross-hop
    #: request deduplication / with page-granular over-fetch (M-GIDS's
    #: BaM path) read more than the unique working set.
    io_amplification: float = 1.0
    io: IoStackConfig = field(default_factory=IoStackConfig)
    #: Extra in-flight mini-batches per GPU (double buffering): their
    #: prefetch flows keep the fabric busy while the gating batch's
    #: tail finishes, as pipelined out-of-core runtimes do.  0 disables.
    prefetch_batches: int = 1
    #: Relay part of congestion-prone fetches through an NVLink partner
    #: when the partner's route avoids a contended trunk (paper Section
    #: 4.7: "alternative paths ... when PCIe channels become
    #: congested").
    nvlink_multipath: bool = True
    #: Fraction of such a fetch that takes the relay path (the relay
    #: costs an extra HBM hop and partner SM time, so it only offloads).
    nvlink_relay_fraction: float = 0.25
    #: Failed-read retry ladder (only exercised under fault injection).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        if self.model_name not in ("graphsage", "gat", "gcn"):
            raise ValueError(f"unknown model {self.model_name!r}")
        if self.sample_batches < 1:
            raise ValueError("sample_batches must be >= 1")
        if not self.fanouts:
            raise ValueError("need at least one fanout")


@dataclass
class EpochResult:
    """Simulated epoch outcome.

    All quantities are in the **paper frame**: per-step transfers are
    rescaled by the dataset's batch ratio before bandwidth allocation
    and step counts use the paper's batch size, so epoch times, traffic
    bytes, and rates compare directly against the paper's reported
    numbers.  ``epoch_seconds`` and ``paper_epoch_seconds`` are equal
    (the latter kept for API clarity at call sites).
    """

    epoch_seconds: float
    paper_epoch_seconds: float
    num_steps: int
    #: Mean per-step stage durations, worst GPU (seconds).
    io_seconds: float
    sample_seconds: float
    compute_seconds: float
    sync_seconds: float
    #: Aggregate external feature bytes per epoch / epoch time.
    throughput_bytes_per_s: float
    #: Trained seed vertices per second (scale-invariant).
    seeds_per_s: float
    #: Mean external inlet rate per GPU during the I/O stage (bytes/s).
    per_gpu_inlet: Dict[str, float]
    #: Bytes served locally (own-GPU cache) vs over the fabric, per epoch.
    local_bytes: float
    external_bytes: float
    #: Per-epoch traffic per physical resource.
    traffic: TrafficAccount
    #: Per-epoch (bin, gpu) demand — input for the max-flow predictor.
    demand: TrafficDemand
    #: Simulated per-step durations (seconds), in step order — the
    #: throughput trajectory fault experiments plot.  Includes any
    #: replan migration charges returned by ``run_epoch``'s ``on_step``.
    step_seconds: List[float] = field(default_factory=list)

    @property
    def paper_throughput_bytes_per_s(self) -> float:
        """Fabric throughput is scale-invariant (bytes and time both
        scale by the same factor)."""
        return self.throughput_bytes_per_s


class EpochSimulator:
    """Simulates epochs of one system configuration.

    Parameters
    ----------
    topo:
        Runtime topology (from :meth:`MachineSpec.build`).
    machine:
        Device specs (GPU flops, SSD IOPS) for cost models.
    dataset:
        Scaled dataset instance.
    placement:
        Vertex-to-bin data placement (DDAK, hash, ...).
    config:
        Simulation knobs.
    ssd_binding:
        Optional map ``gpu name -> allowed SSD names`` modelling systems
        (M-GIDS) that statically bind drives to GPUs: feature reads for
        SSD-resident vertices are redirected to the bound drives
        (round-robin), regardless of where placement put them.
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` injected
        step-by-step: degraded capacities, failed-drive re-routing to
        the recovery tier, and GPU cache evictions.  ``None`` or an
        empty schedule reproduces the fault-free path bit-for-bit.
    """

    def __init__(
        self,
        topo: Topology,
        machine: MachineSpec,
        dataset: ScaledDataset,
        placement: DataPlacement,
        config: Optional[SimConfig] = None,
        ssd_binding: Optional[Dict[str, Sequence[str]]] = None,
        faults: Optional[object] = None,
    ) -> None:
        self.topo = topo
        self.machine = machine
        self.dataset = dataset
        self.placement = placement
        self.config = config or SimConfig()
        self.ssd_binding = {
            g: list(v) for g, v in (ssd_binding or {}).items()
        }
        if placement.bin_of.size != dataset.graph.num_vertices:
            raise ValueError("placement does not cover the dataset's vertices")
        self.router = Router(topo)
        self.gpus = topo.gpus()
        if not self.gpus:
            raise ValueError("topology has no GPUs")
        self.cost_model = ComputeCostModel(
            machine.gpu,
            self.config.model_name,
            in_dim=dataset.graph.feature_dim,
            num_classes=self.config.num_classes,
        )
        self._capacities = self._build_capacities()
        self.injector = None
        if faults:
            # lazy import: repro.faults imports simulator submodules at
            # module level, so this module must never import it at scope
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(topo, faults, self._capacities)
        self._mem_banks = sorted(
            n.name for n in topo.nodes_of_kind(NodeKind.CPU_MEM)
        )
        self._mem_set = set(self._mem_banks)
        self._ssd_set = set(topo.ssds())
        self._bin_names = [b.name for b in placement.bins]
        self._param_bytes = self._model_param_bytes()
        #: paper-frame multiplier for per-step byte/shape quantities
        self._ratio = float(dataset.batch_ratio)
        #: NVLink partner per GPU (first bridge found), for multipathing
        from repro.core.topology import LinkKind

        self._nv_partner: Dict[str, str] = {}
        for link in topo.links:
            if link.kind is LinkKind.NVLINK and link.src in self.gpus:
                self._nv_partner.setdefault(link.dst, link.src)

    # ------------------------------------------------------------------
    def _build_capacities(self) -> Dict:
        caps = self.router.capacities
        # SSD egress limited by page-granular IOPS, not just rated bw
        eff = effective_read_bw(
            self.machine.ssd,
            page_bytes=self.config.io.page_bytes,
            queue_depth=self.config.io.queue_depth,
        )
        self._ssd_eff_bw = eff
        for ssd in self.topo.ssds():
            key = egress_key(ssd)
            if key in caps:
                caps[key] = min(caps[key], eff)
        return caps

    def _model_param_bytes(self) -> float:
        d = self.dataset.graph.feature_dim
        if self.config.model_name == "graphsage":
            hidden = 256
            return 4.0 * (2 * d * hidden + 2 * hidden * self.config.num_classes)
        if self.config.model_name == "gcn":
            hidden = 256
            return 4.0 * (d * hidden + hidden * self.config.num_classes)
        hidden, heads = 64, 8
        width = hidden * heads
        return 4.0 * (d * width + width * self.config.num_classes)

    # ------------------------------------------------------------------
    def _bin_source(self, bin_name: str, gpu: str) -> Optional[str]:
        """Routable source node for a bin read by ``gpu``.

        ``None`` means the read is local (free): the GPU's own cache or
        its node's replicated cache.  A *foreign* node's replicated
        cache (multi-node clusters) is served P2P from one of that
        node's GPU HBMs, picked deterministically for load spread.
        """
        from repro.core.ddak import GPU_REPLICATED

        if bin_name == GPU_REPLICATED or bin_name == f"{gpu}:mem":
            return None
        suffix = "/" + GPU_REPLICATED
        if bin_name.endswith(suffix):
            node_prefix = bin_name[: -len(suffix)] + "/"
            if gpu.startswith(node_prefix):
                return None
            donors = [g for g in self.gpus if g.startswith(node_prefix)]
            if not donors:
                raise ValueError(
                    f"replicated bin {bin_name!r} has no owning GPUs"
                )
            donor = donors[hash(gpu) % len(donors)]
            return f"{donor}:mem"
        return bin_name

    def set_placement(self, placement: DataPlacement) -> None:
        """Swap in a new data placement mid-run (replanning).

        Migration cost is *not* charged here — the replan policy
        accounts it through ``run_epoch``'s ``on_step`` hook.
        """
        if placement.bin_of.size != self.dataset.graph.num_vertices:
            raise ValueError("placement does not cover the dataset's vertices")
        self.placement = placement
        self._bin_names = [b.name for b in placement.bins]

    def _gpu_demand(
        self, gpu: str, unique_vertices: np.ndarray, view=None
    ) -> Tuple[Dict[str, float], float]:
        """(external bytes per source node, local bytes) for one batch.

        The replicated GPU cache (:data:`~repro.core.ddak.GPU_REPLICATED`)
        and the GPU's own partitioned cache are local (free).  Systems
        with static SSD binding redirect all SSD-resident reads to the
        GPU's bound drives (their striping replicates data per GPU).

        Under a fault view, reads against failed drives are re-keyed to
        the drive's recovery source and a ``GpuEvict``'s share of local
        hits becomes CPU-memory reads over the GPU's local banks.
        """
        fb = (
            float(self.dataset.feature_bytes)
            * self._ratio
            * self.config.io_amplification
        )
        bins = np.asarray(self.placement.bin_of)[unique_vertices]
        counts = np.bincount(bins, minlength=len(self._bin_names))
        demand: Dict[str, float] = {}
        local = 0.0
        bound = self.ssd_binding.get(gpu)
        failed = view.failed_ssds if view is not None else ()
        redirect = 0.0
        for bin_idx, count in enumerate(counts):
            if count == 0:
                continue
            name = self._bin_names[bin_idx]
            nbytes = count * fb
            source = self._bin_source(name, gpu)
            if source is None:
                local += nbytes
            elif bound is not None and source.startswith("ssd"):
                # statically-bound I/O stacks stripe each GPU's data
                # across its own drives only
                redirect += nbytes
            else:
                if source in failed:
                    source += _RECOVERY_SUFFIX
                demand[source] = demand.get(source, 0.0) + nbytes
        if redirect:
            if not bound:
                raise ValueError(f"{gpu} has an empty SSD binding")
            share = redirect / len(bound)
            for drive in bound:
                key = drive + _RECOVERY_SUFFIX if drive in failed else drive
                demand[key] = demand.get(key, 0.0) + share
        if view is not None:
            evicted = view.evict_fraction.get(gpu, 0.0)
            if evicted > 0 and local > 0:
                moved = local * evicted
                local -= moved
                banks = self._local_mem_banks(gpu)
                if banks:
                    share = moved / len(banks)
                    for bank in banks:
                        demand[bank] = demand.get(bank, 0.0) + share
        return demand, local

    def simulate_step(
        self,
        rngs: List[np.random.Generator],
        parts: List[np.ndarray],
        view=None,
    ) -> Tuple[Dict[str, float], Dict, TrafficDemand, float]:
        """Simulate one training step on every GPU.

        ``view`` is an optional :class:`~repro.faults.injector.FaultView`:
        transfers then contend on the degraded capacities, failed-drive
        reads route over the recovery tier, and faults activating this
        step charge the retry-ladder detection stall to the I/O stage.

        Returns (per-stage worst-GPU durations, fair-share result,
        step demand, local bytes).
        """
        cfg = self.config
        ds = self.dataset
        flows: List[Flow] = []
        local_total = 0.0
        demand = TrafficDemand()
        shapes: Dict[str, BatchShape] = {}
        sample_gpu_cost: Dict[str, float] = {}
        for gpu, rng, part in zip(self.gpus, rngs, parts):
            take = min(ds.batch_size, part.size)
            seeds = rng.choice(part, size=take, replace=False)
            sample = sample_batch(ds.graph, seeds, cfg.fanouts, seed=rng)
            # per-GNN-layer work: layer l consumes hop L-l's edges
            layer_work = tuple(
                (int(np.unique(layer.src).size), layer.num_edges)
                for layer in reversed(sample.layers)
            )
            shapes[gpu] = BatchShape(
                sample.num_unique, sample.num_edges, layer_work
            ).scaled(self._ratio)
            sample_gpu_cost[gpu] = self.cost_model.sampling_seconds(shapes[gpu])
            # feature-fetch flows
            per_bin, local = self._gpu_demand(gpu, sample.unique_vertices, view)
            local_total += local
            for bin_name, nbytes in sorted(per_bin.items()):
                demand.add(bin_name, gpu, nbytes)
                flows.extend(self._route_flows(bin_name, gpu, nbytes))
            # adjacency reads from CPU memory during sampling (the
            # graph topology is replicated per node, so reads stay on
            # the GPU's own machine in multi-node clusters)
            topo_bytes = (
                sample.num_edges * cfg.topo_read_bytes_per_edge * self._ratio
            )
            banks = self._local_mem_banks(gpu)
            if topo_bytes > 0 and banks:
                share = topo_bytes / len(banks)
                for bank in banks:
                    flows.append(
                        Flow(
                            path=self.router.path(bank, gpu),
                            demand=share,
                            tag=("topo", gpu),
                        )
                    )
            # double buffering: the next batches' prefetch flows share
            # the fabric so the gating batch's tail never leaves links
            # idle (their bytes are accounted in *their own* step)
            for _ in range(max(0, cfg.prefetch_batches)):
                pre_seeds = rng.choice(part, size=take, replace=False)
                pre = sample_batch(ds.graph, pre_seeds, cfg.fanouts, seed=rng)
                pre_bins, _ = self._gpu_demand(gpu, pre.unique_vertices, view)
                for bin_name, nbytes in sorted(pre_bins.items()):
                    for f in self._route_flows(bin_name, gpu, nbytes):
                        flows.append(
                            Flow(f.path, f.demand, ("prefetch", gpu))
                        )
        capacities = self._capacities if view is None else view.capacities
        fair = progressive_fill(flows, capacities)
        finish = fair.finish_by_tag()
        # steady-state pipelining: 1 + prefetch batches drain together,
        # so the per-step I/O time is the joint makespan amortised over
        # the batches in flight (tails overlap neighbouring steps)
        in_flight = 1 + max(0, cfg.prefetch_batches)
        io_t = max(
            (
                max(
                    finish.get(("feat", g), 0.0),
                    finish.get(("prefetch", g), 0.0),
                )
                / in_flight
                for g in self.gpus
            ),
            default=0.0,
        )
        if view is not None:
            io_t += self._fault_step_costs(view, demand)
        sample_t = max(
            finish.get(("topo", g), 0.0) + sample_gpu_cost[g] for g in self.gpus
        )
        compute_t = max(
            self.cost_model.batch_seconds(shapes[g]) for g in self.gpus
        )
        sync_t = allreduce_seconds(
            self._param_bytes, len(self.gpus), self._sync_bw()
        )
        stages = {
            "io": io_t,
            "sample": sample_t,
            "compute": compute_t,
            "sync": sync_t,
        }
        return stages, fair, demand, local_total

    def _fault_step_costs(self, view, demand: TrafficDemand) -> float:
        """Extra I/O seconds and counters for one faulted step.

        Faults whose onset is this step charge the retry-ladder
        detection stall once; the retries burned against each newly
        dead drive are counted from the bytes that had to re-route.
        """
        from repro.faults.models import SsdFailure
        from repro.simulator.iostack import pages_for_bytes

        tel = obs.active()
        if tel is not None:
            for f in view.activated:
                obs.add("faults.injected", 1, kind=f.kind, target=f.target)
        stall = 0.0
        retry = self.config.retry
        for f in view.activated:
            if not isinstance(f, SsdFailure):
                continue
            stall += retry.detection_stall_s
            if tel is not None:
                rerouted = sum(
                    nbytes
                    for (src, _g), nbytes in demand.entries.items()
                    if src == f.ssd + _RECOVERY_SUFFIX
                )
                obs.add(
                    "io.retries",
                    pages_for_bytes(rerouted, self.config.io.page_bytes)
                    * retry.max_retries,
                    ssd=f.ssd,
                )
        return stall

    def _tier_of(self, source: str) -> str:
        """Serving tier of one routable source node (telemetry label)."""
        if source.endswith(_RECOVERY_SUFFIX):
            return "recovery"
        if source in self._ssd_set:
            return "ssd"
        if source in self._mem_set:
            return "cpu"
        return "peer_gpu"

    def _local_mem_banks(self, gpu: str) -> List[str]:
        """DRAM banks on the GPU's own machine (all banks when the
        topology is a single machine)."""
        if "/" not in gpu:
            return self._mem_banks
        prefix = gpu.split("/", 1)[0] + "/"
        return [b for b in self._mem_banks if b.startswith(prefix)]

    def _trunk_keys(self, path) -> set:
        """Resource keys of inter-interconnect trunks (and the QPI P2P
        pool) on a path — the links that actually congest."""
        out = set()
        for key in path:
            if key[0] == "qpi_p2p":
                out.add(key)
            elif key[0] == "link":
                src_k = self.topo.node(key[1]).kind
                dst_k = self.topo.node(key[2]).kind
                if src_k.is_interconnect and dst_k.is_interconnect:
                    out.add(key)
        return out

    def _route_flows(self, source: str, gpu: str, nbytes: float) -> List[Flow]:
        """Flows for one demand entry, recovery-source aware.

        A ``"{ssd}!recovery"`` source models the failed drive's pages
        being served from the host-side replica: the flow squeezes
        through the bounded ``("recovery", ssd)`` resource, then follows
        the CPU-memory route into the GPU (spread over its local banks).
        """
        if not source.endswith(_RECOVERY_SUFFIX):
            return self._feature_flows(source, gpu, nbytes)
        ssd = source[: -len(_RECOVERY_SUFFIX)]
        banks = self._local_mem_banks(gpu)
        if not banks:
            raise ValueError(f"no CPU banks to recover {ssd!r} reads through")
        share = nbytes / len(banks)
        tag = ("feat", gpu)
        return [
            Flow((("recovery", ssd),) + self.router.path(bank, gpu), share, tag)
            for bank in banks
        ]

    def _feature_flows(
        self, bin_name: str, gpu: str, nbytes: float
    ) -> List[Flow]:
        """Flows for one (bin, gpu) fetch, with optional NVLink relay.

        When the direct route traverses a contended trunk (QPI P2P pool
        or a switch/root trunk) that an NVLink partner's route avoids,
        ``nvlink_relay_fraction`` of the bytes relay through the partner
        (partner fetches, then forwards over NVLink) — the paper's
        Section-4.7 behaviour.
        """
        direct = self.router.path(bin_name, gpu)
        tag = ("feat", gpu)
        partner = self._nv_partner.get(gpu)
        frac = self.config.nvlink_relay_fraction
        if not self.config.nvlink_multipath or partner is None or frac <= 0:
            return [Flow(direct, nbytes, tag)]
        direct_trunks = self._trunk_keys(direct)
        if not direct_trunks:
            return [Flow(direct, nbytes, tag)]
        via = self.router.path(bin_name, partner)
        if not (direct_trunks - self._trunk_keys(via)):
            return [Flow(direct, nbytes, tag)]  # relay avoids nothing
        from repro.simulator.routing import link_key

        relay = via + (link_key(partner, gpu),)
        return [
            Flow(direct, nbytes * (1 - frac), tag),
            Flow(relay, nbytes * frac, tag),
        ]

    def _sync_bw(self) -> float:
        """Gradient all-reduce bandwidth: the slowest ring hop — a
        network link in clusters, else NVLink, else the GPU PCIe link."""
        from repro.core.topology import LinkKind

        net = [
            l.capacity for l in self.topo.links if l.kind is LinkKind.NETWORK
        ]
        if net:
            return min(net)
        nv = [
            l.capacity for l in self.topo.links if l.kind is LinkKind.NVLINK
        ]
        if nv:
            return min(nv)
        gpu_links = [
            l.capacity
            for l in self.topo.links
            if l.src in self.gpus and not l.src == l.dst
            and self.topo.node(l.dst).kind.is_interconnect
        ]
        return min(gpu_links) if gpu_links else 20e9

    # ------------------------------------------------------------------
    def run_epoch(self, on_step=None) -> EpochResult:
        """Simulate ``sample_batches`` steps and extrapolate one epoch.

        ``on_step(step, step_time, stages)`` is an optional per-step
        hook (the replan policy): called after each simulated step, and
        any float it returns is charged as extra seconds on that step
        (e.g. migration time).  It may mutate the simulator through
        :meth:`set_placement` before the next step.
        """
        cfg = self.config
        ds = self.dataset
        rng = ensure_rng(cfg.seed)
        parts = partition_random(ds.train_ids, len(self.gpus), seed=rng)
        rngs = spawn_rngs(rng, len(self.gpus))
        # paper-frame steps: the scaled step count corrected for the
        # batch-size floor (ratio < scale when the floor kicked in)
        steps_scaled = max(
            1, int(np.ceil(max(p.size for p in parts) / ds.batch_size))
        )
        steps_per_epoch = max(
            1, int(round(steps_scaled * ds.scale / self._ratio))
        )
        n_sim = min(cfg.sample_batches, steps_scaled)
        tel = obs.active()

        traffic = TrafficAccount(self.topo)
        total_demand = TrafficDemand()
        stage_sums = {"io": 0.0, "sample": 0.0, "compute": 0.0, "sync": 0.0}
        step_time_sum = 0.0
        step_times: List[float] = []
        local_sum = 0.0
        with obs.span(
            "epoch.run",
            dataset=ds.spec.key,
            gpus=len(self.gpus),
            steps_simulated=n_sim,
        ):
            for step in range(n_sim):
                view = (
                    self.injector.view(step)
                    if self.injector is not None
                    else None
                )
                with obs.span("epoch.step", step=step):
                    stages, fair, demand, local = self.simulate_step(
                        rngs, parts, view
                    )
                for k in stage_sums:
                    stage_sums[k] += stages[k]
                # 3-stage pipeline: slowest stage gates; sync is a barrier
                step_time = (
                    max(stages["io"], stages["sample"], stages["compute"])
                    + stages["sync"]
                )
                if on_step is not None:
                    extra = on_step(step, step_time, stages)
                    if extra:
                        step_time += float(extra)
                step_time_sum += step_time
                step_times.append(step_time)
                if tel is not None:
                    for k, v in stages.items():
                        obs.observe("sim.stage_seconds", v, stage=k)
                    obs.observe("sim.step_seconds", step_time)
                # account traffic from the gating demand's routed paths
                # (prefetch flows belong to later steps)
                step_traffic: Dict = {}
                for (bin_name, gpu), nbytes in demand.entries.items():
                    for f in self._route_flows(bin_name, gpu, nbytes):
                        for key in f.path:
                            step_traffic[key] = (
                                step_traffic.get(key, 0.0) + f.demand
                            )
                traffic.add(step_traffic)
                for key, nbytes in demand.entries.items():
                    total_demand.entries[key] = (
                        total_demand.entries.get(key, 0.0) + nbytes
                    )
                local_sum += local

        extrap = steps_per_epoch / n_sim
        epoch_seconds = (step_time_sum / n_sim) * steps_per_epoch
        external_bytes = total_demand.total * extrap
        local_bytes = local_sum * extrap
        epoch_demand = TrafficDemand(
            {k: v * extrap for k, v in total_demand.entries.items()}
        )
        per_gpu = epoch_demand.per_gpu()
        mean_io = stage_sums["io"] / n_sim
        io_time_epoch = max(mean_io * steps_per_epoch, 1e-12)
        traffic = traffic.scaled(extrap)
        if tel is not None:
            self._export_epoch_metrics(
                epoch_demand,
                per_gpu,
                local_bytes,
                traffic,
                stage_sums,
                step_time_sum,
                n_sim,
                epoch_seconds,
                io_time_epoch,
            )
        return EpochResult(
            epoch_seconds=epoch_seconds,
            paper_epoch_seconds=epoch_seconds,
            num_steps=steps_per_epoch,
            io_seconds=mean_io,
            sample_seconds=stage_sums["sample"] / n_sim,
            compute_seconds=stage_sums["compute"] / n_sim,
            sync_seconds=stage_sums["sync"] / n_sim,
            throughput_bytes_per_s=external_bytes / max(epoch_seconds, 1e-12),
            seeds_per_s=(
                ds.train_ids.size * ds.scale / max(epoch_seconds, 1e-12)
            ),
            per_gpu_inlet={
                g: per_gpu.get(g, 0.0) / io_time_epoch for g in self.gpus
            },
            local_bytes=local_bytes,
            external_bytes=external_bytes,
            traffic=traffic,
            demand=epoch_demand,
            step_seconds=step_times,
        )

    def _export_epoch_metrics(
        self,
        epoch_demand: TrafficDemand,
        per_gpu: Dict[str, float],
        local_bytes: float,
        traffic: TrafficAccount,
        stage_sums: Dict[str, float],
        step_time_sum: float,
        n_sim: int,
        epoch_seconds: float,
        io_time_epoch: float,
    ) -> None:
        """Publish one epoch's accounting to the active obs session.

        All quantities are paper-frame epoch totals, so the counters
        line up with :class:`EpochResult` and the paper's figures:
        ``sim.tier_bytes`` by serving tier (gpu = local cache hits),
        per-GPU demand, stage-occupancy shares, per-link traffic, and
        per-SSD utilization against the IOPS-capped effective rate.
        """
        obs.add("sim.tier_bytes", local_bytes, tier="gpu")
        for (source, _gpu), nbytes in epoch_demand.entries.items():
            obs.add("sim.tier_bytes", nbytes, tier=self._tier_of(source))
        for gpu in self.gpus:
            obs.add("sim.per_gpu_bytes", per_gpu.get(gpu, 0.0), gpu=gpu)
            obs.set_gauge(
                "sim.per_gpu_inlet",
                per_gpu.get(gpu, 0.0) / io_time_epoch,
                gpu=gpu,
            )
        mean_step = step_time_sum / n_sim
        if mean_step > 0:
            for k, total in stage_sums.items():
                obs.set_gauge(
                    "sim.stage_share", (total / n_sim) / mean_step, stage=k
                )
            obs.set_gauge(
                "sim.sync_share", (stage_sums["sync"] / n_sim) / mean_step
            )
        traffic.export_metrics(
            seconds=epoch_seconds, capacities=self._capacities
        )
        obs.set_gauge("io.ssd_effective_read_bw", self._ssd_eff_bw)
        for ssd in sorted(self._ssd_set):
            nbytes = traffic.egress_bytes(ssd)
            obs.add("io.ssd_bytes", nbytes, ssd=ssd)
            if self._ssd_eff_bw > 0:
                obs.set_gauge(
                    "io.ssd_utilization",
                    nbytes / (self._ssd_eff_bw * io_time_epoch),
                    ssd=ssd,
                )
