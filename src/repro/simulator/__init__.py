"""Hardware simulator: max-min fair bandwidth sharing, routing, NVMe
queue model, memory ledgers, traffic accounting, and the epoch engine."""

from repro.simulator.bandwidth import (
    FairShareResult,
    Flow,
    max_min_rates,
    progressive_fill,
)
from repro.simulator.routing import Router, egress_key, link_key
from repro.simulator.iostack import (
    GpuIoQueues,
    IoStackConfig,
    effective_read_bw,
    pages_for_bytes,
)
from repro.simulator.memory import (
    MemoryLedger,
    OutOfMemoryError,
    activation_bytes,
    bam_page_cache_metadata_bytes,
    distdgl_partition_bytes,
    io_buffer_bytes,
)
from repro.simulator.traffic import TrafficAccount
from repro.simulator.pipeline import EpochResult, EpochSimulator, SimConfig

__all__ = [
    "FairShareResult",
    "Flow",
    "max_min_rates",
    "progressive_fill",
    "Router",
    "egress_key",
    "link_key",
    "GpuIoQueues",
    "IoStackConfig",
    "effective_read_bw",
    "pages_for_bytes",
    "MemoryLedger",
    "OutOfMemoryError",
    "activation_bytes",
    "bam_page_cache_metadata_bytes",
    "distdgl_partition_bytes",
    "io_buffer_bytes",
    "TrafficAccount",
    "EpochResult",
    "EpochSimulator",
    "SimConfig",
]
