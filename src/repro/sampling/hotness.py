"""Vertex-hotness estimation (paper Section 3.3).

DDAK needs per-vertex access frequencies.  The paper "collect[s] vertex
hotness information through pre-sampling": run the sampler for a few
epochs over the training set and count how often each vertex's features
would be fetched.  We implement that, plus a cheap degree-proxy
estimator used as an ablation (hubs are sampled roughly in proportion
to in-degree under uniform neighbour sampling).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.sampling.batching import iter_seed_batches
from repro.sampling.neighbor import sample_batch
from repro.utils.rng import SeedLike, ensure_rng


def presample_hotness(
    graph: CSRGraph,
    train_ids: np.ndarray,
    batch_size: int,
    fanouts: Sequence[int],
    epochs: int = 1,
    max_batches: Optional[int] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Estimate access counts by running the real sampler.

    Returns ``float64[num_vertices]`` — expected feature fetches per
    epoch for every vertex (extrapolated when ``max_batches`` caps the
    presampling work, mirroring the paper's bounded preprocessing cost).
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    rng = ensure_rng(seed)
    counts = np.zeros(graph.num_vertices, dtype=np.float64)
    total_batches = 0
    seen_batches = 0
    for _ in range(epochs):
        for batch in iter_seed_batches(train_ids, batch_size, seed=rng):
            total_batches += 1
            if max_batches is not None and seen_batches >= max_batches:
                continue  # keep counting total for extrapolation
            sample = sample_batch(graph, batch, fanouts, seed=rng)
            counts[sample.unique_vertices] += 1.0
            seen_batches += 1
    if seen_batches == 0:
        return counts
    # normalise to per-epoch expectation
    counts *= total_batches / (seen_batches * epochs)
    return counts


def degree_proxy_hotness(graph: CSRGraph) -> np.ndarray:
    """Analytic fallback: in-degree plus one (every vertex can be a seed).

    Under uniform neighbour sampling the probability a vertex is drawn
    is proportional to its in-degree, so this ranks vertices the same
    way presampling does on static workloads — at zero sampling cost.
    """
    indeg = np.bincount(graph.indices, minlength=graph.num_vertices)
    return indeg.astype(np.float64) + 1.0


def hotness_coverage(hotness: np.ndarray, top_fraction: float) -> float:
    """Fraction of total accesses covered by the hottest ``top_fraction``
    of vertices — the skew measure behind DDAK's gains (e.g. "top 1% of
    vertices covers 40% of traffic")."""
    if not 0.0 <= top_fraction <= 1.0:
        raise ValueError("top_fraction must be in [0, 1]")
    total = hotness.sum()
    if total <= 0:
        return 0.0
    k = int(round(hotness.size * top_fraction))
    if k == 0:
        return 0.0
    top = np.partition(hotness, hotness.size - k)[-k:]
    return float(top.sum() / total)
