"""K-hop uniform neighbour sampling over CSR graphs (paper Section 2.1).

The paper's models use 2-hop random neighbour sampling with fan-outs
[25, 10].  GPU samplers draw *with replacement* from each vertex's
neighbour list (DGL semantics); we reproduce that, fully vectorised —
one ``Generator.random`` call per hop regardless of frontier size.

A :class:`MiniBatchSample` records, per hop, the frontier and sampled
edges, plus the deduplicated vertex set whose features must be fetched
— the quantity that drives all I/O traffic in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SampledLayer:
    """One hop of sampling: ``src[i] -> dst[i]`` sampled edges.

    ``src`` are frontier vertices (repeated per sampled neighbour) and
    ``dst`` the sampled neighbours.
    """

    src: np.ndarray
    dst: np.ndarray

    @property
    def num_edges(self) -> int:
        """Sampled edges in this hop."""
        return int(self.src.size)


@dataclass(frozen=True)
class MiniBatchSample:
    """A sampled computation subgraph for one seed mini-batch."""

    seeds: np.ndarray
    layers: Tuple[SampledLayer, ...]
    #: Deduplicated ids of every vertex appearing anywhere in the
    #: subgraph (seeds + all sampled neighbours) — the feature-fetch set.
    unique_vertices: np.ndarray

    @property
    def num_edges(self) -> int:
        """Total sampled edges across all hops."""
        return sum(layer.num_edges for layer in self.layers)

    @property
    def num_unique(self) -> int:
        """Distinct vertices whose features must be fetched."""
        return int(self.unique_vertices.size)

    def feature_bytes(self, bytes_per_vertex: int) -> int:
        """Bytes of embeddings this batch must gather."""
        return self.num_unique * bytes_per_vertex


def sample_neighbors(
    graph: CSRGraph,
    frontier: np.ndarray,
    fanout: int,
    rng: np.random.Generator,
) -> SampledLayer:
    """Sample ``fanout`` neighbours (with replacement) per frontier vertex.

    Zero-degree vertices contribute no edges.  Vectorised: cost is
    O(|frontier| * fanout) with no Python-level loop.
    """
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    frontier = np.asarray(frontier, dtype=np.int64)
    starts = graph.indptr[frontier]
    degs = graph.indptr[frontier + 1] - starts
    has_nbrs = degs > 0
    if not has_nbrs.any():
        empty = np.empty(0, dtype=np.int64)
        return SampledLayer(empty, empty)
    f_starts = starts[has_nbrs]
    f_degs = degs[has_nbrs]
    f_src = frontier[has_nbrs]
    offsets = (rng.random((f_src.size, fanout)) * f_degs[:, None]).astype(np.int64)
    dst = graph.indices[(f_starts[:, None] + offsets).ravel()]
    src = np.repeat(f_src, fanout)
    return SampledLayer(src, dst)


def sample_batch(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: Sequence[int],
    seed: SeedLike = None,
) -> MiniBatchSample:
    """Multi-hop sampling: hop ``l`` expands the previous hop's unique
    frontier with ``fanouts[l]`` neighbours each.

    Matches the paper's workflow: the fan-out list is ordered from the
    seed layer outward (``[25, 10]`` samples 25 neighbours of each seed,
    then 10 of each of those).
    """
    rng = ensure_rng(seed)
    seeds = np.asarray(seeds, dtype=np.int64)
    if seeds.ndim != 1:
        raise ValueError("seeds must be 1-D")
    layers: List[SampledLayer] = []
    frontier = np.unique(seeds)
    all_ids = [frontier]
    for fanout in fanouts:
        layer = sample_neighbors(graph, frontier, fanout, rng)
        layers.append(layer)
        frontier = np.unique(layer.dst)
        all_ids.append(frontier)
    unique_vertices = np.unique(np.concatenate(all_ids)) if all_ids else seeds
    return MiniBatchSample(
        seeds=seeds,
        layers=tuple(layers),
        unique_vertices=unique_vertices,
    )
