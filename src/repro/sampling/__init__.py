"""Graph sampling substrate: k-hop neighbour sampling, batching,
hotness estimation."""

from repro.sampling.neighbor import (
    MiniBatchSample,
    SampledLayer,
    sample_batch,
    sample_neighbors,
)
from repro.sampling.batching import iter_seed_batches, num_batches, take_batches
from repro.sampling.hotness import (
    degree_proxy_hotness,
    hotness_coverage,
    presample_hotness,
)

__all__ = [
    "MiniBatchSample",
    "SampledLayer",
    "sample_batch",
    "sample_neighbors",
    "iter_seed_batches",
    "num_batches",
    "take_batches",
    "degree_proxy_hotness",
    "hotness_coverage",
    "presample_hotness",
]
