"""Seed-batch iteration for mini-batch training."""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, ensure_rng


def iter_seed_batches(
    train_ids: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    seed: SeedLike = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield seed mini-batches over one epoch.

    ``drop_last`` discards a trailing partial batch (DDP-style when
    every rank must step in lock-step).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    ids = np.asarray(train_ids, dtype=np.int64)
    if shuffle:
        ids = ids.copy()
        ensure_rng(seed).shuffle(ids)
    n_full = ids.size // batch_size
    end = n_full * batch_size if drop_last else ids.size
    for start in range(0, end, batch_size):
        yield ids[start : start + batch_size]


def num_batches(num_train: int, batch_size: int, drop_last: bool = False) -> int:
    """Batches per epoch for a training-set size."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if drop_last:
        return num_train // batch_size
    return int(np.ceil(num_train / batch_size))


def take_batches(
    train_ids: np.ndarray,
    batch_size: int,
    k: int,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Up to ``k`` shuffled batches — the simulator samples a batch
    subset and extrapolates per-epoch quantities from it."""
    out: List[np.ndarray] = []
    for i, batch in enumerate(
        iter_seed_batches(train_ids, batch_size, shuffle=True, seed=seed)
    ):
        if i >= k:
            break
        out.append(batch)
    return out
