"""Online profiling and adaptive data placement (paper Section 5,
"Limitations").

Moment targets static workloads: hotness is pre-sampled once and DDAK
runs offline.  The paper notes that dynamic settings "require runtime
monitoring and frequent embedding reallocation" and announces
"lightweight online profiling and adaptive placement" as future work.
This module implements that plan:

* :class:`OnlineHotnessTracker` — exponentially-weighted per-vertex
  access counters updated from every sampled batch (O(batch) work, the
  "lightweight" part);
* :class:`AdaptivePlacementManager` — watches the realised cache-hit
  rate; when it decays below a fraction of its best observed value, it
  re-runs DDAK on the *tracked* hotness and charges a migration cost
  (bytes that change bins, pushed at a bounded background bandwidth);
* :class:`DriftingWorkload` — a workload whose training-seed
  distribution rotates through the vertex space, the canonical
  recommendation/streaming drift pattern;
* :func:`simulate_adaptive` — epochs of drift under static vs adaptive
  placement, returning the throughput trajectories the ablation bench
  plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ddak import Bin, DataPlacement, ddak_place
from repro.graphs.datasets import ScaledDataset
from repro.hardware.machines import MachineSpec
from repro.core.topology import Topology
from repro.simulator.pipeline import EpochResult, EpochSimulator, SimConfig
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive


class OnlineHotnessTracker:
    """EWMA access counters over vertices.

    ``decay`` is the per-epoch retention: 1.0 never forgets (converges
    to the static pre-sampled counts), lower values track drift faster
    at the cost of noisier estimates.
    """

    def __init__(
        self, num_vertices: int, decay: float = 0.6, floor: float = 1e-3
    ) -> None:
        check_fraction("decay", decay)
        if num_vertices < 1:
            raise ValueError("num_vertices must be >= 1")
        self.decay = decay
        self.floor = floor
        self.counts = np.zeros(num_vertices, dtype=np.float64)

    def observe_batch(
        self, unique_vertices: np.ndarray, weight: float = 1.0
    ) -> None:
        """Record one sampled mini-batch's feature accesses.

        ``weight`` lets a sampled subset of batches stand in for a full
        epoch (observe k of n batches with weight n/k).
        """
        self.counts[unique_vertices] += weight

    def end_epoch(self) -> None:
        """Apply the per-epoch exponential decay."""
        self.counts *= self.decay

    @property
    def hotness(self) -> np.ndarray:
        """Current estimate (floored so cold vertices still rank)."""
        return self.counts + self.floor


def _bin_name_of(placement: DataPlacement) -> np.ndarray:
    """Per-vertex bin *names* — the stable identity for counting moved
    vertices across two placements (bin indices only align when both
    placements share one bin list)."""
    names = np.array([b.name for b in placement.bins])
    return names[placement.bin_of]


@dataclass
class MigrationEvent:
    """One re-placement: when, how much moved, what it cost."""

    epoch: int
    moved_vertices: int
    moved_bytes: float
    seconds: float


@dataclass
class AdaptivePlacementManager:
    """Re-places data when the observed hit rate degrades.

    ``trigger_ratio`` — re-place when the epoch's local-hit fraction
    falls below this fraction of the best hit rate seen so far.
    ``migration_bw`` — background bandwidth available for shuffling
    embeddings between bins (reads+writes overlap training, so this is
    deliberately far below fabric speed).
    """

    bins: Sequence[Bin]
    feature_bytes: int
    pool_size: int = 100
    trigger_ratio: float = 0.85
    migration_bw: float = 4e9
    best_hit_rate: float = 0.0
    events: List[MigrationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_fraction("trigger_ratio", self.trigger_ratio)
        check_positive("migration_bw", self.migration_bw)

    def should_replace(self, hit_rate: float) -> bool:
        """Update the watermark and decide whether to re-place."""
        if hit_rate > self.best_hit_rate:
            self.best_hit_rate = hit_rate
            return False
        return hit_rate < self.best_hit_rate * self.trigger_ratio

    def replace(
        self,
        epoch: int,
        current: DataPlacement,
        tracked_hotness: np.ndarray,
        bins: Optional[Sequence[Bin]] = None,
    ) -> Tuple[DataPlacement, MigrationEvent]:
        """Re-run DDAK on tracked hotness; charge the movement cost.

        ``bins`` re-targets the knapsack at a *different* bin list (the
        fault-replanning path, where failed bins disappeared): movement
        is then counted by comparing each vertex's bin *name* — indices
        are meaningless across bin lists — and the manager adopts the
        new bins for subsequent replacements.
        """
        if bins is not None:
            self.bins = list(bins)
        new = ddak_place(
            self.bins,
            tracked_hotness,
            self.feature_bytes,
            pool_size=self.pool_size,
        )
        moved = int(
            np.count_nonzero(_bin_name_of(new) != _bin_name_of(current))
        )
        moved_bytes = moved * float(self.feature_bytes)
        event = MigrationEvent(
            epoch=epoch,
            moved_vertices=moved,
            moved_bytes=moved_bytes,
            seconds=moved_bytes / self.migration_bw,
        )
        self.events.append(event)
        # new regime: reset the watermark so recovery re-arms the trigger
        self.best_hit_rate = 0.0
        return new, event


@dataclass
class DriftingWorkload:
    """Training seeds drift through the vertex space.

    Epoch ``e`` trains on a contiguous window of vertex ids starting at
    ``e * drift_fraction * V`` — on a community graph
    (:func:`repro.graphs.generators.community_graph`, where communities
    are contiguous id ranges) this is the "active region slides over
    time" pattern: each epoch heats a different community's hubs.
    ``drift_fraction=0`` is the static case.
    """

    dataset: ScaledDataset
    drift_fraction: float = 0.15
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_fraction("drift_fraction", self.drift_fraction)
        self._window = self.dataset.train_ids.size

    def train_ids(self, epoch: int) -> np.ndarray:
        """Training-seed ids for epoch ``epoch``."""
        n = self.dataset.graph.num_vertices
        start = int(epoch * self.drift_fraction * n) % n
        idx = (np.arange(self._window) + start) % n
        return np.sort(np.unique(idx.astype(np.int64)))

    def dataset_at(self, epoch: int) -> ScaledDataset:
        """The dataset with epoch-``e``'s training window."""
        import dataclasses

        return dataclasses.replace(
            self.dataset, train_ids=self.train_ids(epoch)
        )


@dataclass
class AdaptiveRunResult:
    """Throughput trajectories of a drift simulation."""

    #: per-epoch trained seeds/s under the static initial placement
    static_seeds_per_s: List[float]
    #: per-epoch seeds/s with adaptive re-placement (migration charged)
    adaptive_seeds_per_s: List[float]
    events: List[MigrationEvent]

    @property
    def static_mean(self) -> float:
        """Mean throughput of the static arm (seeds/s)."""
        return float(np.mean(self.static_seeds_per_s))

    @property
    def adaptive_mean(self) -> float:
        """Mean throughput of the adaptive arm (seeds/s)."""
        return float(np.mean(self.adaptive_seeds_per_s))

    @property
    def adaptive_gain(self) -> float:
        """Mean-throughput improvement of adaptive over static."""
        return self.adaptive_mean / max(self.static_mean, 1e-12) - 1.0


def _hit_rate(result: EpochResult) -> float:
    total = result.local_bytes + result.external_bytes
    return result.local_bytes / total if total > 0 else 0.0


def simulate_adaptive(
    topo: Topology,
    machine: MachineSpec,
    workload: DriftingWorkload,
    bins: Sequence[Bin],
    initial_hotness: np.ndarray,
    num_epochs: int = 6,
    sim: Optional[SimConfig] = None,
    tracker_decay: float = 0.5,
    pool_size: int = 100,
) -> AdaptiveRunResult:
    """Run ``num_epochs`` of drift under static vs adaptive placement.

    Both runs start from the same DDAK placement built on
    ``initial_hotness`` (epoch-0 knowledge).  The adaptive run updates
    an :class:`OnlineHotnessTracker` from the simulator's per-epoch
    demand, re-places when the hit rate decays, and pays the migration
    time out of its throughput.
    """
    sim = sim or SimConfig(sample_batches=4)
    ds0 = workload.dataset
    feature_bytes = ds0.feature_bytes
    placement0 = ddak_place(
        bins, initial_hotness, feature_bytes, pool_size=pool_size
    )

    # --- static arm ----------------------------------------------------
    static_tp: List[float] = []
    for epoch in range(num_epochs):
        ds_e = workload.dataset_at(epoch)
        result = EpochSimulator(topo, machine, ds_e, placement0, sim).run_epoch()
        static_tp.append(result.seeds_per_s)

    # --- adaptive arm ---------------------------------------------------
    tracker = OnlineHotnessTracker(
        ds0.graph.num_vertices, decay=tracker_decay
    )
    tracker.counts = np.asarray(initial_hotness, dtype=np.float64).copy()
    manager = AdaptivePlacementManager(
        bins, feature_bytes, pool_size=pool_size
    )
    placement = placement0
    adaptive_tp: List[float] = []
    from repro.sampling.batching import take_batches
    from repro.sampling.neighbor import sample_batch

    rng = ensure_rng(workload.seed)
    for epoch in range(num_epochs):
        ds_e = workload.dataset_at(epoch)
        result = EpochSimulator(topo, machine, ds_e, placement, sim).run_epoch()
        # online profiling: observe a sampled subset of the epoch's
        # batches, weighted up to full-epoch magnitude
        k = min(12, ds_e.num_batches)
        weight = ds_e.num_batches / k
        for seeds in take_batches(ds_e.train_ids, ds_e.batch_size, k, seed=rng):
            s = sample_batch(ds_e.graph, seeds, sim.fanouts, seed=rng)
            tracker.observe_batch(s.unique_vertices, weight=weight)
        tracker.end_epoch()

        seconds = result.epoch_seconds
        hit = _hit_rate(result)
        if manager.should_replace(hit):
            placement, event = manager.replace(epoch, placement, tracker.hotness)
            seconds += event.seconds
        paper_train = ds_e.train_ids.size * ds_e.scale
        adaptive_tp.append(paper_train / max(seconds, 1e-12))

    return AdaptiveRunResult(
        static_seeds_per_s=static_tp,
        adaptive_seeds_per_s=adaptive_tp,
        events=manager.events,
    )
