"""The unified run specification (:class:`RunSpec`).

``GnnSystem.run`` historically took 8 loose keyword arguments; every
new capability (fault schedules, replanning) would have widened that
signature further at a dozen call sites.  A :class:`RunSpec` bundles
the complete description of one run into a single frozen value:

>>> spec = RunSpec(dataset=ds, placement=layout, sample_batches=6)
>>> result = system.run(spec)
>>> result = system.run(spec.replace(faults=schedule, replan=True))

The old kwargs form still works through a deprecation shim on
``GnnSystem.run`` and produces identical results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.placement import Placement
from repro.faults.schedule import FaultSchedule
from repro.graphs.datasets import ScaledDataset
from repro.runtime.replan import ReplanConfig


@dataclass(frozen=True, eq=False)
class RunSpec:
    """Everything one :meth:`GnnSystem.run` needs, as a single value.

    ``eq=False``: ``hotness`` may be a large array; specs are compared
    by identity, not content.
    """

    dataset: ScaledDataset
    #: Hardware placement; None lets the system pick (Moment searches,
    #: fixed-layout baselines use their default).
    placement: Optional[Placement] = None
    model: str = "graphsage"
    num_gpus: int = 4
    num_ssds: int = 8
    fanouts: Tuple[int, ...] = (25, 10)
    sample_batches: int = 10
    nvlink_pairs: Optional[Sequence[Tuple[int, int]]] = None
    #: Per-vertex hotness override (None = the system estimates it).
    hotness: Optional[np.ndarray] = None
    #: Fault schedule injected into the epoch simulation (None/empty =
    #: healthy run, bit-identical to the pre-faults code path).
    faults: Optional[FaultSchedule] = None
    #: Degradation-aware replanning: ``True`` enables it with default
    #: knobs, or pass a :class:`~repro.runtime.replan.ReplanConfig`.
    #: Requires a fault schedule (it reacts to injected degradation).
    replan: Union[bool, ReplanConfig, None] = None
    #: Workload seed override; ``None`` keeps the system's own seed
    #: (the historical behaviour, bit-identical).
    seed: Optional[int] = None
    #: Repetition index of this run (0 = the canonical run).  Carried
    #: into :class:`~repro.runtime.system.SystemResult` and the
    #: ``repro.run/v1`` record so the warehouse can key rows on it.
    repetition: int = 0
    #: Hardware identity by name, resolved through
    #: :func:`repro.hardware.registry.get_machine` (``"machine_a"``,
    #: ``"gen:7"``, a spec-file path).  ``None`` (the historical
    #: behaviour) trusts whatever machine the system was built with.
    machine: Optional[str] = None
    #: Hardware identity as a declarative fabric: a
    #: :class:`~repro.hardware.fabric.FabricSpec`, its ``to_dict()``
    #: payload, or a path to a ``repro.fabric/v1`` JSON file.  Mutually
    #: exclusive with ``machine``.
    fabric: Union[object, Dict, str, None] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "fanouts", tuple(self.fanouts))
        if self.repetition < 0:
            raise ValueError("repetition must be >= 0")
        if self.seed is not None and not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an int or None, got {type(self.seed)}"
            )
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.num_ssds < 1:
            raise ValueError("num_ssds must be >= 1")
        if self.sample_batches < 1:
            raise ValueError("sample_batches must be >= 1")
        if self.faults is not None and not isinstance(
            self.faults, FaultSchedule
        ):
            raise TypeError(
                f"faults must be a FaultSchedule, got {type(self.faults)}"
            )
        if self.replan_config is not None and not self.faults:
            raise ValueError(
                "replan requires a fault schedule to react to"
            )
        if self.machine is not None and self.fabric is not None:
            raise ValueError(
                "give exactly one hardware identity: this spec sets both "
                f"machine={self.machine!r} and fabric={type(self.fabric).__name__} "
                "— drop one (machine names a registered/generated fabric, "
                "fabric carries an inline spec or spec-file path)"
            )
        if self.machine is not None and not isinstance(self.machine, str):
            raise TypeError(
                f"machine must be a registry name (str) or None, got "
                f"{type(self.machine)}"
            )

    @property
    def replan_config(self) -> Optional[ReplanConfig]:
        """The effective replanning config (None = replanning off)."""
        if self.replan is None or self.replan is False:
            return None
        if self.replan is True:
            return ReplanConfig()
        if isinstance(self.replan, ReplanConfig):
            return self.replan
        raise TypeError(
            f"replan must be bool or ReplanConfig, got {type(self.replan)}"
        )

    def resolve_machine(self):
        """The :class:`~repro.hardware.machines.MachineSpec` this spec
        names, or ``None`` when the spec carries no hardware identity.

        ``machine`` resolves through the registry; ``fabric`` compiles
        an inline :class:`~repro.hardware.fabric.FabricSpec`, a
        ``to_dict()`` payload, or a spec-file path.
        """
        if self.machine is not None:
            from repro.hardware.registry import get_machine

            return get_machine(self.machine)
        if self.fabric is None:
            return None
        from repro.hardware.fabric import (
            FabricSpec,
            compile_fabric,
            load_fabric,
        )

        if isinstance(self.fabric, FabricSpec):
            return compile_fabric(self.fabric)
        if isinstance(self.fabric, dict):
            return compile_fabric(FabricSpec.from_dict(self.fabric))
        if isinstance(self.fabric, str):
            return compile_fabric(load_fabric(self.fabric))
        raise TypeError(
            "fabric must be a FabricSpec, a repro.fabric/v1 dict, or a "
            f"path, got {type(self.fabric)}"
        )

    def replace(self, **changes) -> "RunSpec":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_repetition(
        self, repetition: int, base_seed: Optional[int] = None
    ) -> "RunSpec":
        """This spec as repetition ``repetition`` of a repeated run.

        Repetition 0 keeps the base seed (the canonical, bit-identical
        run); later repetitions get independent derived seeds (see
        :func:`repro.utils.rng.derive_seed`).  ``base_seed`` defaults
        to this spec's own seed (or 0 when unset).
        """
        from repro.utils.rng import derive_seed

        base = base_seed if base_seed is not None else self.seed
        if repetition == 0 and base is None:
            # canonical run with no explicit seed: leave the system's
            # own seed in charge (bit-identical to the one-shot path)
            return self.replace(repetition=0, seed=None)
        return self.replace(
            repetition=repetition, seed=derive_seed(base, repetition)
        )
