"""System runtime: the Moment trainer, shared system machinery, the
adaptive-placement extension (paper Section 5), and degradation-aware
replanning under injected faults."""

from repro.runtime.spec import RunSpec
from repro.runtime.system import (
    RUN_RECORD_SCHEMA,
    GnnSystem,
    MomentSystem,
    SystemResult,
    gpu_memory_budget,
)
from repro.runtime.replan import (
    ReplanConfig,
    ReplanEvent,
    ReplanPolicy,
    ReplanReport,
)
from repro.runtime.adaptive import (
    AdaptivePlacementManager,
    AdaptiveRunResult,
    DriftingWorkload,
    MigrationEvent,
    OnlineHotnessTracker,
    simulate_adaptive,
)

__all__ = [
    "RunSpec",
    "RUN_RECORD_SCHEMA",
    "GnnSystem",
    "MomentSystem",
    "SystemResult",
    "gpu_memory_budget",
    "ReplanConfig",
    "ReplanEvent",
    "ReplanPolicy",
    "ReplanReport",
    "AdaptivePlacementManager",
    "AdaptiveRunResult",
    "DriftingWorkload",
    "MigrationEvent",
    "OnlineHotnessTracker",
    "simulate_adaptive",
]
