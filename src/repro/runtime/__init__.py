"""System runtime: the Moment trainer, shared system machinery, and the
adaptive-placement extension (paper Section 5)."""

from repro.runtime.system import (
    GnnSystem,
    MomentSystem,
    SystemResult,
    gpu_memory_budget,
)
from repro.runtime.adaptive import (
    AdaptivePlacementManager,
    AdaptiveRunResult,
    DriftingWorkload,
    MigrationEvent,
    OnlineHotnessTracker,
    simulate_adaptive,
)

__all__ = [
    "GnnSystem",
    "MomentSystem",
    "SystemResult",
    "gpu_memory_budget",
    "AdaptivePlacementManager",
    "AdaptiveRunResult",
    "DriftingWorkload",
    "MigrationEvent",
    "OnlineHotnessTracker",
    "simulate_adaptive",
]
