"""End-to-end system runners: Moment and the shared machinery baselines
reuse (memory budgeting, placement, epoch simulation).

A :class:`GnnSystem` owns the full recipe of one trainable system on a
single machine: how it budgets GPU/CPU memory (paper-scale, so the OOM
verdicts match the paper's), how it places data (DDAK vs hash), whether
its I/O stack shares drives or binds them per GPU, and which hardware
placement it runs on.  :meth:`GnnSystem.run` returns a
:class:`SystemResult` — either a simulated epoch or a recorded OOM.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.ddak import DataPlacement, ddak_place, hash_place, make_bins
from repro.core.optimizer import (
    CapacityPlan,
    MomentOptimizer,
    MomentPlan,
    OptimizerConfig,
    capacity_plan,
    tier_fractions,
)
from repro.core.placement import Placement
from repro.core.search import SearchResult
from repro.core.topology import Topology
from repro.graphs.datasets import ScaledDataset
from repro.hardware.fabric import fabric_summary
from repro.hardware.machines import MachineSpec
from repro.simulator.binding import static_ssd_binding
from repro.simulator.iostack import IoStackConfig
from repro.simulator.memory import (
    MemoryLedger,
    OutOfMemoryError,
    activation_bytes,
    bam_page_cache_metadata_bytes,
    io_buffer_bytes,
)
from repro.simulator.pipeline import EpochResult, EpochSimulator, SimConfig
from repro.simulator.routing import reconcile_storage_rates
from repro.simulator.traffic import TrafficAccount
from repro.core.flowmodel import TrafficDemand
from repro.runtime.replan import ReplanPolicy
from repro.runtime.spec import RunSpec
from repro.utils.rng import SeedLike
from repro.utils.units import GiB

#: Versioned schema tag for :meth:`SystemResult.to_dict` records.
RUN_RECORD_SCHEMA = "repro.run/v1"


@dataclass
class SystemResult:
    """Outcome of running one system configuration."""

    system: str
    machine: str
    dataset: str
    model: str
    num_gpus: int
    epoch: Optional[EpochResult] = None
    oom: Optional[str] = None
    plan: Optional[MomentPlan] = None
    placement: Optional[Placement] = None
    data_placement: Optional[DataPlacement] = None
    #: Placement-search outcome (candidate/prune/cache counts) when the
    #: system ran the search engine (None for fixed-layout baselines).
    search: Optional[SearchResult] = None
    #: Spans + metric deltas recorded during this run (None when
    #: telemetry was disabled); see :class:`repro.obs.RunScope`.
    telemetry: Optional[Dict] = None
    #: What the replan policy observed/did (None unless the run had a
    #: fault schedule and replanning enabled).
    replan: Optional[object] = None
    #: Workload seed the run actually used (None when the system was
    #: seeded with a live Generator — not recordable).
    seed: Optional[int] = None
    #: Repetition index from the spec (0 = canonical run).
    repetition: int = 0
    #: Fabric shape summary (name, chassis fingerprint, node/link/tier
    #: counts, generator seed) from
    #: :func:`repro.hardware.fabric.fabric_summary`; None for OOM runs
    #: that never built a topology.
    fabric: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        """Whether the run produced an epoch (no OOM)."""
        return self.epoch is not None

    @property
    def paper_epoch_seconds(self) -> float:
        """Paper-frame epoch time (NaN if the system OOMed)."""
        if not self.ok:
            return float("nan")
        return self.epoch.paper_epoch_seconds

    @property
    def seeds_per_s(self) -> float:
        """Trained seed vertices per second (0 if OOMed)."""
        if not self.ok:
            return 0.0
        return self.epoch.seeds_per_s

    def __repr__(self) -> str:
        if self.oom:
            tail = f"OOM: {self.oom.splitlines()[0]}"
        else:
            tail = f"epoch={self.paper_epoch_seconds:.2f}s (paper scale)"
        return (
            f"SystemResult({self.system} on {self.machine}/{self.dataset}/"
            f"{self.model} x{self.num_gpus}gpu: {tail})"
        )

    # -- serialization (schema ``repro.run/v1``) -------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable record of this run (schema
        :data:`RUN_RECORD_SCHEMA`).

        Carries the scalar outcome: identity fields, seed/repetition
        provenance, the epoch's timings/throughput/trajectory, the
        replan report, and — when the run executed under telemetry —
        the scoped spans + metric deltas (already JSON-ready, see
        :class:`repro.obs.RunScope`).  Rich in-memory objects (plan,
        data placement, per-link traffic, demand matrix) are
        intentionally *not* serialized — re-run for those.  The CLI
        ``--json-out``, the benchmarks and the fault bench all emit
        this shape.
        """
        epoch = None
        if self.epoch is not None:
            e = self.epoch
            epoch = {
                "epoch_seconds": float(e.epoch_seconds),
                "paper_epoch_seconds": float(e.paper_epoch_seconds),
                "num_steps": int(e.num_steps),
                "io_seconds": float(e.io_seconds),
                "sample_seconds": float(e.sample_seconds),
                "compute_seconds": float(e.compute_seconds),
                "sync_seconds": float(e.sync_seconds),
                "throughput_bytes_per_s": float(e.throughput_bytes_per_s),
                "seeds_per_s": float(e.seeds_per_s),
                "local_bytes": float(e.local_bytes),
                "external_bytes": float(e.external_bytes),
                "per_gpu_inlet": {
                    g: float(v) for g, v in e.per_gpu_inlet.items()
                },
                "step_seconds": [float(s) for s in e.step_seconds],
            }
        replan = None
        if self.replan is not None:
            r = self.replan
            replan = {
                "recovered": bool(r.recovered),
                "healthy_step_s": (
                    None
                    if r.healthy_step_s is None
                    else float(r.healthy_step_s)
                ),
                "time_to_recover_s": (
                    None
                    if r.time_to_recover_s is None
                    else float(r.time_to_recover_s)
                ),
                "migrated_bytes": float(r.migrated_bytes),
                "events": [
                    {
                        "step": int(ev.step),
                        "faults": list(ev.faults),
                        "moved_vertices": int(ev.moved_vertices),
                        "moved_bytes": float(ev.moved_bytes),
                        "seconds": float(ev.seconds),
                    }
                    for ev in r.events
                ],
            }
        return {
            "schema": RUN_RECORD_SCHEMA,
            "system": self.system,
            "machine": self.machine,
            "dataset": self.dataset,
            "model": self.model,
            "num_gpus": int(self.num_gpus),
            "seed": self.seed,
            "repetition": int(self.repetition),
            "ok": self.ok,
            "oom": self.oom,
            "fabric": self.fabric,
            "telemetry": self.telemetry,
            "placement": (
                list(self.placement.as_tuple())
                if self.placement is not None
                else None
            ),
            "epoch": epoch,
            "replan": replan,
        }

    @classmethod
    def from_dict(cls, record: Dict) -> "SystemResult":
        """Rebuild a result from a :meth:`to_dict` record.

        The epoch comes back with empty ``traffic``/``demand`` (those
        are not serialized); ``plan``/``placement``/``data_placement``/
        ``search`` are ``None``; ``replan`` is the plain record dict
        (not a :class:`~repro.runtime.replan.ReplanReport`) and
        ``telemetry`` the plain spans+metrics payload (round-tripped
        verbatim; None for pre-telemetry records).
        """
        schema = record.get("schema")
        if schema != RUN_RECORD_SCHEMA:
            raise ValueError(
                f"unsupported run record schema {schema!r}; "
                f"expected {RUN_RECORD_SCHEMA!r}"
            )
        epoch = None
        if record.get("epoch") is not None:
            e = record["epoch"]
            epoch = EpochResult(
                epoch_seconds=e["epoch_seconds"],
                paper_epoch_seconds=e["paper_epoch_seconds"],
                num_steps=e["num_steps"],
                io_seconds=e["io_seconds"],
                sample_seconds=e["sample_seconds"],
                compute_seconds=e["compute_seconds"],
                sync_seconds=e["sync_seconds"],
                throughput_bytes_per_s=e["throughput_bytes_per_s"],
                seeds_per_s=e["seeds_per_s"],
                per_gpu_inlet=dict(e["per_gpu_inlet"]),
                local_bytes=e["local_bytes"],
                external_bytes=e["external_bytes"],
                traffic=TrafficAccount(Topology("deserialized")),
                demand=TrafficDemand(),
                step_seconds=list(e.get("step_seconds", [])),
            )
        return cls(
            system=record["system"],
            machine=record["machine"],
            dataset=record["dataset"],
            model=record["model"],
            num_gpus=record["num_gpus"],
            epoch=epoch,
            oom=record.get("oom"),
            replan=record.get("replan"),
            telemetry=record.get("telemetry"),
            seed=record.get("seed"),
            repetition=int(record.get("repetition", 0)),
            fabric=record.get("fabric"),
        )


def gpu_memory_budget(
    machine: MachineSpec,
    dataset: ScaledDataset,
    model_name: str,
    num_gpus: int,
    io: IoStackConfig,
    extra: Optional[Dict[str, float]] = None,
) -> MemoryLedger:
    """Paper-scale HBM ledger for one GPU of a training system.

    Reserves model+optimizer state, activations for a paper-scale batch,
    pinned I/O buffers, and any system-specific ``extra`` entries (e.g.
    M-GIDS's page-cache metadata).  What remains is available as an
    embedding cache.  Raises :class:`OutOfMemoryError` when the fixed
    reservations alone exceed HBM.
    """
    spec = dataset.spec
    ledger = MemoryLedger(f"{machine.gpu.name}", machine.gpu.hbm_bytes)
    hidden = 256 if model_name == "graphsage" else 64 * 8
    # ~1.6M unique vertices per paper-scale batch (8000 seeds, [25,10])
    batch_nodes = int(spec.batch_size * 200)
    ledger.reserve("model+optimizer", 64e6)
    ledger.reserve(
        "activations", activation_bytes(batch_nodes, hidden, num_layers=2)
    )
    ledger.reserve(
        "io_buffers",
        io_buffer_bytes(io.num_queue_pairs, io.queue_depth, io.page_bytes),
    )
    for label, nbytes in (extra or {}).items():
        ledger.reserve(label, nbytes)
    return ledger


class GnnSystem:
    """Base recipe for a single-machine multi-GPU out-of-core system.

    Subclasses override the class attributes / hooks:

    * :attr:`name` — report label;
    * :attr:`shares_ssds` — False installs a static per-GPU drive
      binding (M-GIDS/M-Hyperion);
    * :meth:`extra_gpu_reservations` — per-GPU HBM costs beyond the
      common ones (page-cache metadata, ...);
    * :meth:`place_data` — DDAK (Moment) or hash (baselines).
    """

    name = "base"
    shares_ssds = True
    #: External-read multiplier (no cross-hop dedup, page over-fetch).
    io_amplification = 1.0
    #: Fraction of the HBM cache budget the system uses *effectively*
    #: (dynamic page caches thrash relative to an optimal hot set).
    gpu_cache_efficiency = 1.0
    #: How per-GPU caches share hot vertices (see :func:`make_bins`).
    gpu_cache_policy = "replicated"

    def __init__(
        self,
        machine: MachineSpec,
        gpu_cache_fraction: float = 0.6,
        cpu_cache_vertex_fraction: float = 0.01,
        seed: SeedLike = 0,
    ) -> None:
        self.machine = machine
        self.gpu_cache_fraction = gpu_cache_fraction
        self.cpu_cache_vertex_fraction = cpu_cache_vertex_fraction
        self.seed = seed

    # -- hooks -----------------------------------------------------------
    def extra_gpu_reservations(
        self, dataset: ScaledDataset, num_gpus: int
    ) -> Dict[str, float]:
        """System-specific per-GPU HBM costs (label -> bytes)."""
        return {}

    def place_data(
        self,
        topo: Topology,
        dataset: ScaledDataset,
        hotness: np.ndarray,
        plan: CapacityPlan,
        traffic: Optional[Dict[str, float]] = None,
    ) -> DataPlacement:
        """Produce the vertex-to-bin data placement for this system."""
        raise NotImplementedError

    def hbm_cache_budget(
        self,
        dataset: ScaledDataset,
        model: str,
        num_gpus: int,
        io: Optional[IoStackConfig] = None,
    ) -> float:
        """Effective per-GPU embedding-cache bytes for this system.

        The same budgeting path :meth:`run` uses — fixed reservations
        (model state, activations, I/O buffers, system extras) come off
        the ledger, and the remainder is scaled by the system's cache
        fraction and efficiency.  Raises :class:`OutOfMemoryError` when
        nothing is left; callers probing OOM frontiers (the fabric
        sweep's monotonicity invariant) can call this without running an
        epoch.
        """
        io = io or IoStackConfig()
        extra = self.extra_gpu_reservations(dataset, num_gpus)
        ledger = gpu_memory_budget(
            self.machine, dataset, model, num_gpus, io, extra
        )
        cache_bytes = (
            ledger.free_bytes
            * self.gpu_cache_fraction
            * self.gpu_cache_efficiency
        )
        if cache_bytes <= 0:
            raise OutOfMemoryError(
                f"{self.name}: no HBM left for an embedding cache\n"
                + ledger.report()
            )
        return cache_bytes

    def default_placement(
        self, dataset: ScaledDataset, num_gpus: int, num_ssds: int
    ) -> Optional[Placement]:
        """The layout this system runs on when none is given.

        Baselines that ship a fixed layout (M-Hyperion, M-GIDS) override
        this; the base system has no default and :meth:`choose_placement`
        raises without an explicit placement.
        """
        return None

    def choose_placement(
        self,
        dataset: ScaledDataset,
        placement: Optional[Placement],
        num_gpus: int,
        num_ssds: int,
        nvlink_pairs,
    ) -> Tuple[Placement, Optional[MomentPlan]]:
        """Pick the hardware placement (and optional MomentPlan)."""
        if placement is None:
            placement = self.default_placement(dataset, num_gpus, num_ssds)
        if placement is None:
            raise ValueError(f"{self.name} requires an explicit placement")
        return placement, None

    # -- main entry point --------------------------------------------------
    def run(self, spec=None, **kwargs) -> SystemResult:
        """Budget memory, place data, and simulate one epoch.

        The canonical form takes one :class:`~repro.runtime.spec.RunSpec`::

            system.run(RunSpec(dataset=ds, sample_batches=6))

        The historical loose-kwargs form
        (``system.run(ds, placement=..., num_gpus=4, ...)``) still works
        — it builds the equivalent ``RunSpec`` and emits a
        ``DeprecationWarning`` — and produces identical results.

        With telemetry enabled (:func:`repro.obs.enable` /
        :func:`~repro.obs.capture`), the run executes inside a
        ``system.run`` span and the result's :attr:`SystemResult.telemetry`
        carries the spans and metric deltas it produced.
        """
        if not isinstance(spec, RunSpec):
            if spec is not None:
                kwargs["dataset"] = spec
            warnings.warn(
                "GnnSystem.run(dataset, **kwargs) is deprecated and will "
                "be removed in 2.0; pass a repro.RunSpec instead "
                "(identical results)",
                DeprecationWarning,
                stacklevel=2,
            )
            spec = RunSpec(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either a RunSpec or legacy kwargs, not both: "
                f"{sorted(kwargs)}"
            )
        scope = obs.scope()
        with obs.span(
            "system.run",
            system=self.name,
            machine=self.machine.name,
            dataset=spec.dataset.spec.key,
            model=spec.model,
            gpus=spec.num_gpus,
        ) as sp:
            # spec.seed overrides the system's seed for this run only
            # (repetition driver: same system, derived per-rep seeds)
            prev_seed = self.seed
            if spec.seed is not None:
                self.seed = spec.seed
            try:
                result = self._run(spec)
            finally:
                self.seed = prev_seed
            sp.set(ok=result.ok)
        if scope is not None:
            result.telemetry = scope.collect()
        return result

    def _run(self, spec: RunSpec) -> SystemResult:
        dataset = spec.dataset
        placement = spec.placement
        model = spec.model
        num_gpus = spec.num_gpus
        num_ssds = spec.num_ssds
        fanouts = spec.fanouts
        sample_batches = spec.sample_batches
        nvlink_pairs = spec.nvlink_pairs
        hotness = spec.hotness
        io = IoStackConfig()
        declared = spec.resolve_machine()
        if declared is not None and declared.name != self.machine.name:
            raise ValueError(
                f"spec names hardware {declared.name!r} but this system "
                f"was built for {self.machine.name!r}; build the system "
                "from the spec (repro.api.system_for) or drop the spec's "
                "machine/fabric field"
            )
        result = SystemResult(
            system=self.name,
            machine=self.machine.name,
            dataset=dataset.spec.key,
            model=model,
            num_gpus=num_gpus,
            seed=self.seed if isinstance(self.seed, int) else None,
            repetition=spec.repetition,
        )
        try:
            cache_bytes = self.hbm_cache_budget(
                dataset, model, num_gpus, io
            )
        except OutOfMemoryError as err:
            result.oom = str(err)
            return result

        with obs.span("system.choose_placement", system=self.name):
            chosen, plan = self.choose_placement(
                dataset, placement, num_gpus, num_ssds, nvlink_pairs
            )
        topo = self.machine.build(chosen, nvlink_pairs=nvlink_pairs)
        fab = fabric_summary(self.machine, topo)
        result.fabric = fab
        # Key the run's counters by fabric shape so warehouse rows can
        # group by the chassis the run actually executed on.
        obs.add("fabric.nodes", fab["nodes"], fabric=fab["fingerprint"])
        obs.add("fabric.links", fab["links"], fabric=fab["fingerprint"])
        obs.add("fabric.tiers", fab["tiers"], fabric=fab["fingerprint"])
        if fab.get("generator_seed") is not None:
            obs.add(
                "fabric.generator_seed",
                fab["generator_seed"],
                fabric=fab["fingerprint"],
            )

        cap_plan = capacity_plan(
            self.machine,
            dataset,
            gpu_cache_fraction=1.0,  # replaced below with the ledger value
            cpu_cache_vertex_fraction=self.cpu_cache_vertex_fraction,
        )
        cap_plan = CapacityPlan(
            gpu_cache_bytes=dataset.scaled_capacity(cache_bytes),
            cpu_cache_bytes=cap_plan.cpu_cache_bytes,
            ssd_capacity_bytes=cap_plan.ssd_capacity_bytes,
        )

        if hotness is None:
            if plan is not None:
                hotness = plan.hotness
            else:
                hotness = MomentOptimizer(
                    self.machine, num_gpus, num_ssds,
                    OptimizerConfig(fanouts=fanouts, seed=self.seed),
                ).estimate_hotness(dataset)

        traffic = plan.prediction.storage_rate if plan is not None else None
        if traffic is not None:
            # degenerate LP optima can park a symmetric drive at zero
            # or overshoot what fair-share arbitration will serve;
            # repair both before DDAK weighs bins by the rates
            traffic = reconcile_storage_rates(topo, traffic)
        with obs.span("system.place_data", system=self.name):
            data_placement = self.place_data(
                topo, dataset, hotness, cap_plan, traffic
            )

        binding = None
        if not self.shares_ssds:
            binding = static_ssd_binding(topo)

        sim = EpochSimulator(
            topo,
            self.machine,
            dataset,
            data_placement,
            SimConfig(
                fanouts=tuple(fanouts),
                model_name=model,
                sample_batches=sample_batches,
                io=io,
                io_amplification=self.io_amplification,
                seed=self.seed,
            ),
            ssd_binding=binding,
            faults=spec.faults,
        )
        on_step = None
        replan_cfg = spec.replan_config
        if replan_cfg is not None:
            if plan is not None and plan.fractions is not None:
                fractions = plan.fractions
            else:
                fractions = tier_fractions(
                    hotness,
                    dataset.feature_bytes,
                    cap_plan,
                    num_gpus,
                    gpu_cache_policy=self.gpu_cache_policy,
                )
            policy = ReplanPolicy(
                sim,
                chosen,
                hotness,
                cap_plan,
                fractions,
                config=replan_cfg,
                nvlink_pairs=nvlink_pairs,
                gpu_cache_policy=self.gpu_cache_policy,
            )
            on_step = policy.on_step
            result.replan = policy.report
        result.epoch = sim.run_epoch(on_step=on_step)
        result.plan = plan
        result.placement = chosen
        result.data_placement = data_placement
        result.search = plan.search if plan is not None else None
        return result


class MomentSystem(GnnSystem):
    """The paper's system: optimizer-chosen placement + DDAK."""

    name = "moment"
    shares_ssds = True

    def __init__(
        self,
        machine: MachineSpec,
        optimizer_config: Optional[OptimizerConfig] = None,
        **kwargs,
    ) -> None:
        super().__init__(machine, **kwargs)
        self.optimizer_config = optimizer_config

    def choose_placement(
        self, dataset, placement, num_gpus, num_ssds, nvlink_pairs
    ):
        """Pick the hardware placement (and optional MomentPlan)."""
        cfg = self.optimizer_config or OptimizerConfig(
            gpu_cache_fraction=self.gpu_cache_fraction,
            cpu_cache_vertex_fraction=self.cpu_cache_vertex_fraction,
            nvlink_pairs=tuple(nvlink_pairs) if nvlink_pairs else None,
            seed=self.seed,
        )
        optimizer = MomentOptimizer(self.machine, num_gpus, num_ssds, cfg)
        candidates = [placement] if placement is not None else None
        plan = optimizer.optimize(dataset, candidates=candidates)
        return plan.placement, plan

    def place_data(self, topo, dataset, hotness, plan, traffic=None):
        """Produce the vertex-to-bin data placement for this system."""
        bins = make_bins(
            topo,
            gpu_cache_bytes=plan.gpu_cache_bytes,
            cpu_cache_bytes=plan.cpu_cache_bytes,
            ssd_capacity_bytes=plan.ssd_capacity_bytes,
            traffic=traffic,
        )
        return ddak_place(bins, hotness, dataset.feature_bytes)
