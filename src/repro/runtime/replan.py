"""Degradation-aware replanning (ROADMAP: graceful degradation).

A :class:`ReplanPolicy` rides the epoch simulator's ``on_step`` hook.
Each step it compares the realised step time against the healthy
baseline; when a new fault has degraded the fabric it re-runs the
placement machinery on the *surviving* topology:

1. the search engine re-scores the current hardware placement against
   the fault injector's :class:`~repro.core.topology.TopologyMask`
   (hardware cannot be re-cabled mid-run, so the candidate set is just
   the running placement — what the search contributes is the degraded
   fabric's optimal per-storage-node traffic targets);
2. DDAK re-places data over the surviving bins with those targets
   (:meth:`AdaptivePlacementManager.replace`, name-aware across the two
   bin lists);
3. the migration bytes are charged at a bounded background bandwidth —
   returned from the hook as extra seconds on the triggering step.

Only capacity-affecting faults (drive failures/slowdowns, link
degradations) trigger a replan: a pure ``GpuEvict`` leaves the fabric
intact and data placement cannot restore evicted HBM.

Observability: ``replan.migrated_bytes``/``replan.events`` counters and
a ``replan.time_to_recover_s`` gauge (simulated seconds from the first
fault onset until a step lands back within ``recover_ratio`` of the
healthy step time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.ddak import make_bins
from repro.core.flowbatch import fast_min_completion_time
from repro.core.optimizer import CapacityPlan
from repro.core.search import SearchRequest, run_search, scoring_demand
from repro.core.topology import TopologyMask
from repro.runtime.adaptive import AdaptivePlacementManager
from repro.utils.validation import check_fraction, check_positive


@dataclass(frozen=True)
class ReplanConfig:
    """Knobs of the degradation-aware replanner."""

    #: Background bandwidth migrations are charged at (bytes/s) —
    #: deliberately far below fabric speed, migration overlaps training.
    migration_bw: float = 4e9
    #: A step counts as degraded when throughput falls below this
    #: fraction of the healthy baseline (step time grows by 1/ratio).
    trigger_ratio: float = 0.9
    #: Recovery target: recovered when a step's throughput is back to at
    #: least this fraction of healthy.
    recover_ratio: float = 0.8
    #: Safety valve on replans per epoch (each one reruns search+DDAK).
    max_replans: int = 4
    #: DDAK pooling factor for the re-placement.
    pool_size: int = 100
    #: Scoring workers for the masked search (None = engine default).
    search_workers: Optional[int] = None

    def __post_init__(self) -> None:
        check_positive("migration_bw", self.migration_bw)
        check_fraction("trigger_ratio", self.trigger_ratio)
        check_fraction("recover_ratio", self.recover_ratio)
        check_positive("max_replans", self.max_replans)
        check_positive("pool_size", self.pool_size)


@dataclass
class ReplanEvent:
    """One replan: when, what triggered it, what it cost."""

    step: int
    faults: Tuple[str, ...]
    moved_vertices: int
    moved_bytes: float
    seconds: float
    #: Degraded-fabric predicted throughput that sized the new targets.
    predicted_throughput: float


@dataclass
class ReplanReport:
    """What the policy observed and did over one epoch."""

    events: List[ReplanEvent] = field(default_factory=list)
    #: Mean pre-fault step time (the recovery yardstick), seconds.
    healthy_step_s: Optional[float] = None
    #: Simulated seconds from first fault onset to the first recovered
    #: step (None if never degraded or never recovered).
    time_to_recover_s: Optional[float] = None
    recovered: bool = False

    @property
    def migrated_bytes(self) -> float:
        """Total bytes shuffled across all replans."""
        return sum(e.moved_bytes for e in self.events)


class ReplanPolicy:
    """``on_step`` hook that re-places data on the surviving topology.

    Parameters
    ----------
    sim:
        The running :class:`~repro.simulator.pipeline.EpochSimulator`
        (must carry a fault injector).
    placement:
        The hardware placement the system runs on (re-scored, not
        changed: drives cannot be re-slotted mid-run).
    hotness:
        Per-vertex hotness DDAK re-places with.
    cap_plan:
        Tier cache budgets (dataset scale) for rebuilding bins.
    fractions:
        (GPU, CPU, SSD) traffic fractions for the masked search demand.
    """

    def __init__(
        self,
        sim,
        placement,
        hotness: np.ndarray,
        cap_plan: CapacityPlan,
        fractions: Tuple[float, float, float],
        config: Optional[ReplanConfig] = None,
        nvlink_pairs=None,
        gpu_cache_policy: str = "replicated",
    ) -> None:
        if sim.injector is None:
            raise ValueError("ReplanPolicy needs a fault-injected simulator")
        self.sim = sim
        self.placement = placement
        self.hotness = np.asarray(hotness, dtype=np.float64)
        self.cap_plan = cap_plan
        self.fractions = fractions
        self.config = config or ReplanConfig()
        self.nvlink_pairs = nvlink_pairs
        self.gpu_cache_policy = gpu_cache_policy
        self.report = ReplanReport()
        self.manager = AdaptivePlacementManager(
            bins=list(sim.placement.bins),
            feature_bytes=sim.dataset.feature_bytes,
            pool_size=self.config.pool_size,
            migration_bw=self.config.migration_bw,
        )
        self._planned_mask: Optional[TopologyMask] = None
        self._healthy_sum = 0.0
        self._healthy_n = 0
        self._fault_clock: Optional[float] = None
        #: Warm-start hint for the masked re-search: the binding-cut
        #: labels of the most recent related solve (healthy fabric at
        #: first, then each replan's own degraded prediction).  Faults
        #: perturb a few capacities, so the previous cut's root usually
        #: lands inside the new binding segment and the re-score
        #: converges in one or two probes.
        self._warm_cut: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    def on_step(self, step: int, step_time: float, stages: Dict) -> float:
        """The ``run_epoch`` hook; returns migration seconds to charge."""
        view = self.sim.injector.view(step)
        cfg = self.config
        if not view.is_degraded:
            self._healthy_sum += step_time
            self._healthy_n += 1
            return 0.0
        if self._fault_clock is None:
            self._fault_clock = 0.0
        healthy = self.healthy_step_s
        degraded = (
            healthy is None or step_time > healthy / max(cfg.trigger_ratio, 1e-9)
        )
        extra = 0.0
        mask = self.sim.injector.mask_at(step)
        if (
            degraded
            and mask
            and mask != self._planned_mask
            and len(self.report.events) < cfg.max_replans
        ):
            extra = self._replan(step, view, mask)
        if not self.report.recovered:
            self._fault_clock += step_time + extra
            if healthy is not None and step_time + extra <= healthy / max(
                cfg.recover_ratio, 1e-9
            ):
                self.report.recovered = True
                self.report.time_to_recover_s = self._fault_clock
                obs.set_gauge("replan.time_to_recover_s", self._fault_clock)
        return extra

    @property
    def healthy_step_s(self) -> Optional[float]:
        """Mean pre-fault step time, or None if faults hit at step 0."""
        if self._healthy_n == 0:
            return None
        healthy = self._healthy_sum / self._healthy_n
        self.report.healthy_step_s = healthy
        return healthy

    # ------------------------------------------------------------------
    def _replan(self, step: int, view, mask: TopologyMask) -> float:
        """Search the masked fabric, re-DDAK, swap the placement in."""
        cfg = self.config
        with obs.span(
            "replan.run", step=step, faults=len(view.active)
        ) as sp:
            masked_topo = mask.apply(self.sim.topo)
            if self._warm_cut is None:
                # first replan: score the healthy fabric once and keep
                # its binding cut as the warm seed for the masked search
                healthy = fast_min_completion_time(
                    self.sim.topo,
                    scoring_demand(
                        self.sim.topo,
                        self.fractions,
                        gpu_cache_policy=self.gpu_cache_policy,
                    ),
                )
                self._warm_cut = healthy.cut_partition or None
            request = SearchRequest(
                machine=self.sim.machine,
                num_gpus=len(masked_topo.gpus()),
                num_ssds=len(masked_topo.ssds()),
                fractions=self.fractions,
                gpu_cache_policy=self.gpu_cache_policy,
                nvlink_pairs=(
                    tuple(self.nvlink_pairs) if self.nvlink_pairs else None
                ),
                workers=cfg.search_workers,
                candidates=(self.placement,),
                mask=mask,
                warm_cut=self._warm_cut,
            )
            search = run_search(request)
            # chain: this replan's degraded cut seeds the next one
            self._warm_cut = (
                search.best.prediction.cut_partition or self._warm_cut
            )
            bins = make_bins(
                masked_topo,
                gpu_cache_bytes=self.cap_plan.gpu_cache_bytes,
                cpu_cache_bytes=self.cap_plan.cpu_cache_bytes,
                ssd_capacity_bytes=self.cap_plan.ssd_capacity_bytes,
                traffic=search.best.prediction.storage_rate,
                gpu_cache_policy=self.gpu_cache_policy,
            )
            new_placement, migration = self.manager.replace(
                step, self.sim.placement, self.hotness, bins=bins
            )
            self.sim.set_placement(new_placement)
            self._planned_mask = mask
            event = ReplanEvent(
                step=step,
                faults=tuple(f.describe() for f in view.active),
                moved_vertices=migration.moved_vertices,
                moved_bytes=migration.moved_bytes,
                seconds=migration.seconds,
                predicted_throughput=search.best.throughput,
            )
            self.report.events.append(event)
            obs.add("replan.events", 1)
            obs.add("replan.migrated_bytes", migration.moved_bytes)
            sp.set(
                moved_bytes=migration.moved_bytes,
                migration_seconds=migration.seconds,
                warm_starts=search.warm_starts,
            )
        return migration.seconds
