"""Hardware bandwidth/capacity constants (paper Tables 1/3 and Section 2).

All bandwidths are **bytes per second** and all capacities **bytes**.
Values are sustained, application-visible numbers (not raw line rates):
the paper quotes ~20 GiB/s for PCIe 4.0 x16 and ~6 GiB/s per P5510 SSD,
with 8 SSDs sustaining 48 GiB/s on Machine A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, GiB, TB

# ----------------------------------------------------------------------
# Link technologies
# ----------------------------------------------------------------------
#: Sustained bandwidth of one PCIe lane, by generation (bytes/s).
#: Calibrated so an x4 bay sustains a P5510's 6 GB/s (8 SSDs -> the
#: 48 GB/s aggregate the paper measures on Machine A) and an x16 link
#: lands near the ~20 GiB/s the paper quotes.
PCIE_LANE_BW = {
    3: 0.75 * GB,  # 8 GT/s, 128b/130b encoding, protocol overhead
    4: 1.50 * GB,  # 16 GT/s
    5: 3.00 * GB,
}


def pcie_bw(gen: int, lanes: int) -> float:
    """Sustained bandwidth of a PCIe ``gen`` x``lanes`` link."""
    if gen not in PCIE_LANE_BW:
        raise ValueError(f"unsupported PCIe generation {gen}")
    if lanes not in (1, 2, 4, 8, 16):
        raise ValueError(f"invalid lane count {lanes}")
    return PCIE_LANE_BW[gen] * lanes


#: PCIe 4.0 x16 — GPU slots and switch uplinks ("Bus 9/11/16").
PCIE4_X16 = pcie_bw(4, 16)  # 20 GB/s
#: PCIe 4.0 x4 — NVMe bays.
PCIE4_X4 = pcie_bw(4, 4)  # 5 GB/s ceiling per bay lane-wise
#: PCIe 3.0 x16 — Cluster C's GPU links.
PCIE3_X16 = pcie_bw(3, 16)  # 12 GB/s

#: CPU socket interconnect (QPI/UPI), per direction.
QPI_BW = 20.0 * GB
#: Sustained cross-socket PCIe peer-to-peer bandwidth, per direction.
#: Device-to-device DMA that crosses the socket interconnect is far
#: slower than the QPI line rate (root-complex P2P forwarding,
#: IOMMU/NUMA overheads) — the well-known reason GPU<->SSD traffic
#: should stay on one socket, and a key asymmetry DDAK exploits.
QPI_P2P_BW = 9.0 * GB
#: One NVLink 3.0 bridge pair between two A100s (per direction).
NVLINK_BW = 50.0 * GB
#: DRAM bandwidth available to device DMA per socket (IIO-limited).
CPU_MEM_BW = 60.0 * GB
#: HBM2e bandwidth on an A100 (local cache hits are effectively free).
GPU_HBM_BW = 1200.0 * GB
#: 100 Gbps datacenter NIC (Cluster C).
NIC_100G_BW = 12.5 * GB
#: CXL.mem expander bandwidth per device (CXL 2.0 over PCIe 5 x8,
#: sustained load/store + DMA mix lands well under the line rate).
CXL_MEM_BW = 22.0 * GB
#: Typical CXL memory-expander capacity (bytes).
CXL_MEM_BYTES = 128 * GiB


# ----------------------------------------------------------------------
# Devices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GpuSpec:
    """A GPU model: memory size, link width, and compute throughput."""

    name: str
    hbm_bytes: float
    pcie_gen: int
    pcie_lanes: int
    #: Effective dense-math throughput for GNN kernels (FLOP/s).  This is
    #: deliberately far below peak TF32 numbers: sampled-subgraph GNN
    #: kernels are memory-bound and irregular.
    effective_flops: float
    #: Slot units consumed (A100 PCIe cards are dual-slot).
    slot_units: int = 2

    @property
    def link_bw(self) -> float:
        """The device's own PCIe link bandwidth (bytes/s)."""
        return pcie_bw(self.pcie_gen, self.pcie_lanes)


@dataclass(frozen=True)
class SsdSpec:
    """An NVMe SSD model."""

    name: str
    capacity_bytes: float
    read_bw: float
    write_bw: float
    read_iops: float
    pcie_gen: int
    pcie_lanes: int
    slot_units: int = 1

    @property
    def link_bw(self) -> float:
        """The device's own PCIe link bandwidth (bytes/s)."""
        return pcie_bw(self.pcie_gen, self.pcie_lanes)


#: NVIDIA A100 40 GB PCIe (paper's GPU on all machines).
A100_40GB = GpuSpec(
    name="A100-40GB-PCIe",
    hbm_bytes=40 * GiB,
    pcie_gen=4,
    pcie_lanes=16,
    effective_flops=18e12,
)

#: Intel P5510 3.84 TB (paper's SSD).  6 GB/s sustained read so that
#: 8 drives reach the 48 GB/s aggregate the paper measures; the 4-KiB
#: random-read IOPS ceiling is set so page-granular feature fetches can
#: still approach the rated bandwidth at deep queue depths.
P5510 = SsdSpec(
    name="Intel-P5510-3.84TB",
    capacity_bytes=3.84 * TB,
    read_bw=6.0 * GB,
    write_bw=4.0 * GB,
    read_iops=1.55e6,
    pcie_gen=4,
    pcie_lanes=4,
)

# Additional parts for generated/heterogeneous fabrics (the paper's
# machines use only the A100/P5510 pair above; these widen the part
# library so the fabric fuzzer can mix generations).

#: NVIDIA V100 32 GB PCIe — a PCIe 3.0 predecessor generation.
V100_32GB = GpuSpec(
    name="V100-32GB-PCIe",
    hbm_bytes=32 * GiB,
    pcie_gen=3,
    pcie_lanes=16,
    effective_flops=10e12,
)

#: NVIDIA H100 80 GB PCIe — a PCIe 5.0 successor generation.
H100_80GB = GpuSpec(
    name="H100-80GB-PCIe",
    hbm_bytes=80 * GiB,
    pcie_gen=5,
    pcie_lanes=16,
    effective_flops=40e12,
)

#: Intel P4510 4 TB — PCIe 3.0 NVMe, ~3 GB/s sustained reads.
P4510 = SsdSpec(
    name="Intel-P4510-4TB",
    capacity_bytes=4.0 * TB,
    read_bw=3.0 * GB,
    write_bw=2.9 * GB,
    read_iops=0.64e6,
    pcie_gen=3,
    pcie_lanes=4,
)

#: Samsung PM1743 3.84 TB — PCIe 5.0 NVMe, ~12 GB/s sustained reads.
PM1743 = SsdSpec(
    name="Samsung-PM1743-3.84TB",
    capacity_bytes=3.84 * TB,
    read_bw=12.0 * GB,
    write_bw=5.0 * GB,
    read_iops=2.5e6,
    pcie_gen=5,
    pcie_lanes=4,
)


@dataclass(frozen=True)
class CpuSpec:
    """A CPU socket: memory capacity/bandwidth and sampling throughput."""

    name: str
    mem_bytes: float
    mem_bw: float
    threads: int
    #: CPU-side neighbor-sampling rate (sampled edges/s per thread) —
    #: used by the DistDGL baseline, which samples on CPUs.
    sample_edges_per_s_per_thread: float = 0.6e6


XEON_GOLD_5320 = CpuSpec(  # Machine A (2 sockets, 768 GB total)
    name="Xeon-Gold-5320",
    mem_bytes=384 * GiB,
    mem_bw=CPU_MEM_BW,
    threads=52,
)
XEON_GOLD_6426Y = CpuSpec(  # Machine B (2 sockets, 512 GB total)
    name="Xeon-Gold-6426Y",
    mem_bytes=256 * GiB,
    mem_bw=CPU_MEM_BW,
    threads=32,
)
XEON_SILVER_4214 = CpuSpec(  # Cluster C nodes (2 sockets, 256 GB total)
    name="Xeon-Silver-4214",
    mem_bytes=128 * GiB,
    mem_bw=50.0 * GB,
    threads=24,
)
