"""Declarative fabric model: machine specs as data, compiled to machines.

The paper's platforms were born as hand-built constructors
(:func:`~repro.hardware.machines.machine_a` and friends); every other
layer — placement search, the epoch simulator, fault injection,
replanning — is generic over a :class:`~repro.hardware.machines.MachineSpec`
but could only ever see those three fabrics.  This module makes the
hardware layer data-driven:

* a :class:`FabricSpec` dataclass tree describes a machine — sockets,
  root complexes, PCIe switches (arbitrarily cascaded), slot banks with
  per-bank link generations and optional device-part overrides, an
  optional CXL-style memory expander per socket, and an optional
  NIC-attached NVMe shelf;
* :func:`compile_fabric` lowers a spec onto the existing
  :class:`~repro.core.placement.Chassis` substrate, producing a
  ``MachineSpec`` that flows through search/simulation/faults unchanged;
* every spec round-trips through JSON (schema ``repro.fabric/v1``), so
  fabrics can live in files, CI matrices, and run records.

The compiler's lowering order is deliberately pinned (see
:func:`compile_fabric`) so that :func:`machine_a_spec` /
:func:`machine_b_spec` compile to chassis *identical* to the legacy
constructors — node for node, link for link — which is asserted by
test against :func:`topology_fingerprint`.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.placement import (
    DEVICE_KINDS,
    GPU,
    SSD,
    Chassis,
    SlotGroup,
)
from repro.core.topology import LinkKind, NodeKind, Topology
from repro.hardware.specs import (
    A100_40GB,
    CXL_MEM_BW,
    CXL_MEM_BYTES,
    CpuSpec,
    GpuSpec,
    H100_80GB,
    NIC_100G_BW,
    P4510,
    P5510,
    PM1743,
    QPI_BW,
    SsdSpec,
    V100_32GB,
    XEON_GOLD_5320,
    XEON_GOLD_6426Y,
    XEON_SILVER_4214,
    pcie_bw,
)

#: Versioned schema tag for :meth:`FabricSpec.to_dict` payloads.
FABRIC_SCHEMA = "repro.fabric/v1"


# ----------------------------------------------------------------------
# Part libraries: specs are referenced from fabric files by name
# ----------------------------------------------------------------------
GPU_PARTS: Dict[str, GpuSpec] = {
    g.name: g for g in (A100_40GB, V100_32GB, H100_80GB)
}
SSD_PARTS: Dict[str, SsdSpec] = {s.name: s for s in (P5510, P4510, PM1743)}
CPU_PARTS: Dict[str, CpuSpec] = {
    c.name: c for c in (XEON_GOLD_5320, XEON_GOLD_6426Y, XEON_SILVER_4214)
}


def _register(library: Dict[str, object], spec: object) -> str:
    existing = library.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(
            f"part {spec.name!r} already registered with different values"
        )
    library[spec.name] = spec
    return spec.name


def register_gpu_part(spec: GpuSpec) -> str:
    """Add a GPU model to the part library (idempotent by name)."""
    return _register(GPU_PARTS, spec)


def register_ssd_part(spec: SsdSpec) -> str:
    """Add an SSD model to the part library (idempotent by name)."""
    return _register(SSD_PARTS, spec)


def register_cpu_part(spec: CpuSpec) -> str:
    """Add a CPU model to the part library (idempotent by name)."""
    return _register(CPU_PARTS, spec)


def _resolve(library: Dict[str, object], name: str, what: str):
    try:
        return library[name]
    except KeyError:
        raise KeyError(
            f"unknown {what} part {name!r}; known: {', '.join(sorted(library))}"
        ) from None


def resolve_gpu(name: str) -> GpuSpec:
    """GPU part by name (raises ``KeyError`` listing known parts)."""
    return _resolve(GPU_PARTS, name, "GPU")


def resolve_ssd(name: str) -> SsdSpec:
    """SSD part by name (raises ``KeyError`` listing known parts)."""
    return _resolve(SSD_PARTS, name, "SSD")


def resolve_cpu(name: str) -> CpuSpec:
    """CPU part by name (raises ``KeyError`` listing known parts)."""
    return _resolve(CPU_PARTS, name, "CPU")


# ----------------------------------------------------------------------
# The spec tree
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LinkWidth:
    """A PCIe link as (generation, lanes); bandwidth is derived."""

    gen: int
    lanes: int

    def __post_init__(self) -> None:
        pcie_bw(self.gen, self.lanes)  # validates both fields

    @property
    def bw(self) -> float:
        """Sustained bandwidth of this link (bytes/s)."""
        return pcie_bw(self.gen, self.lanes)

    def to_dict(self) -> Dict:
        return {"gen": self.gen, "lanes": self.lanes}

    @classmethod
    def from_dict(cls, d: Dict) -> "LinkWidth":
        return cls(gen=int(d["gen"]), lanes=int(d["lanes"]))


@dataclass(frozen=True)
class SlotBankSpec:
    """A bank of interchangeable slots on one attach point.

    ``name`` is local to the attach point (the compiled slot group is
    ``"<attach>.<name>"``, e.g. ``"rc0.bays"``).  ``gpu_part`` /
    ``ssd_part`` override the fabric-level device parts for this bank
    only — that is how mixed GPU generations are expressed.
    """

    name: str
    units: int
    link: LinkWidth
    allowed: Tuple[str, ...] = (GPU, SSD)
    bus: str = ""
    gpu_part: Optional[str] = None
    ssd_part: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "allowed", tuple(self.allowed))
        if self.units <= 0:
            raise ValueError(f"bank {self.name!r} must have units > 0")
        bad = set(self.allowed) - set(DEVICE_KINDS)
        if bad or not self.allowed:
            raise ValueError(
                f"bank {self.name!r} allows unknown/empty device kinds "
                f"{sorted(bad) or '(none)'}"
            )

    def to_dict(self) -> Dict:
        d: Dict = {
            "name": self.name,
            "units": self.units,
            "link": self.link.to_dict(),
            "allowed": list(self.allowed),
        }
        if self.bus:
            d["bus"] = self.bus
        if self.gpu_part:
            d["gpu_part"] = self.gpu_part
        if self.ssd_part:
            d["ssd_part"] = self.ssd_part
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "SlotBankSpec":
        return cls(
            name=d["name"],
            units=int(d["units"]),
            link=LinkWidth.from_dict(d["link"]),
            allowed=tuple(d.get("allowed", (GPU, SSD))),
            bus=d.get("bus", ""),
            gpu_part=d.get("gpu_part"),
            ssd_part=d.get("ssd_part"),
        )


@dataclass(frozen=True)
class SwitchSpec:
    """A PCIe switch: an uplink, local slot banks, cascaded children."""

    uplink: LinkWidth
    bus: str = ""
    banks: Tuple[SlotBankSpec, ...] = ()
    children: Tuple["SwitchSpec", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "banks", tuple(self.banks))
        object.__setattr__(self, "children", tuple(self.children))

    def to_dict(self) -> Dict:
        d: Dict = {"uplink": self.uplink.to_dict()}
        if self.bus:
            d["bus"] = self.bus
        if self.banks:
            d["banks"] = [b.to_dict() for b in self.banks]
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "SwitchSpec":
        return cls(
            uplink=LinkWidth.from_dict(d["uplink"]),
            bus=d.get("bus", ""),
            banks=tuple(
                SlotBankSpec.from_dict(b) for b in d.get("banks", ())
            ),
            children=tuple(
                SwitchSpec.from_dict(c) for c in d.get("children", ())
            ),
        )


@dataclass(frozen=True)
class CxlMemSpec:
    """A CXL.mem expander on one socket: an extra DRAM-class tier."""

    capacity_bytes: float = CXL_MEM_BYTES
    bandwidth: float = CXL_MEM_BW

    def to_dict(self) -> Dict:
        return {
            "capacity_bytes": self.capacity_bytes,
            "bandwidth": self.bandwidth,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "CxlMemSpec":
        return cls(
            capacity_bytes=float(d["capacity_bytes"]),
            bandwidth=float(d["bandwidth"]),
        )


@dataclass(frozen=True)
class NicStorageSpec:
    """A NIC-attached NVMe shelf (NVMe-oF style) hanging off one socket.

    The shelf's drives sit behind a forwarding NIC node whose uplink
    caps aggregate shelf bandwidth.  The uplink is modelled as a PCIe
    trunk (not a :data:`~repro.core.topology.LinkKind.NETWORK` link):
    on a single machine the shelf contends on the local fabric, while
    NETWORK links mean *cluster* all-reduce paths to the simulator.
    """

    bays: SlotBankSpec
    nic_bw: float = NIC_100G_BW
    bus: str = ""

    def to_dict(self) -> Dict:
        d: Dict = {"bays": self.bays.to_dict(), "nic_bw": self.nic_bw}
        if self.bus:
            d["bus"] = self.bus
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "NicStorageSpec":
        return cls(
            bays=SlotBankSpec.from_dict(d["bays"]),
            nic_bw=float(d["nic_bw"]),
            bus=d.get("bus", ""),
        )


@dataclass(frozen=True)
class SocketSpec:
    """One CPU socket: its root complex and everything hanging off it."""

    cpu_part: str
    banks: Tuple[SlotBankSpec, ...] = ()
    switches: Tuple[SwitchSpec, ...] = ()
    cxl: Optional[CxlMemSpec] = None
    nic_storage: Optional[NicStorageSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "banks", tuple(self.banks))
        object.__setattr__(self, "switches", tuple(self.switches))

    def to_dict(self) -> Dict:
        d: Dict = {"cpu_part": self.cpu_part}
        if self.banks:
            d["banks"] = [b.to_dict() for b in self.banks]
        if self.switches:
            d["switches"] = [s.to_dict() for s in self.switches]
        if self.cxl is not None:
            d["cxl"] = self.cxl.to_dict()
        if self.nic_storage is not None:
            d["nic_storage"] = self.nic_storage.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "SocketSpec":
        return cls(
            cpu_part=d["cpu_part"],
            banks=tuple(
                SlotBankSpec.from_dict(b) for b in d.get("banks", ())
            ),
            switches=tuple(
                SwitchSpec.from_dict(s) for s in d.get("switches", ())
            ),
            cxl=(
                CxlMemSpec.from_dict(d["cxl"]) if d.get("cxl") else None
            ),
            nic_storage=(
                NicStorageSpec.from_dict(d["nic_storage"])
                if d.get("nic_storage")
                else None
            ),
        )


@dataclass(frozen=True)
class FabricSpec:
    """A whole machine, declaratively.

    ``gpu_part``/``ssd_part`` are the machine's *primary* device models
    (used for memory/capacity budgeting and by any bank that does not
    override them).  ``generator_seed`` records provenance when the
    spec came out of :mod:`repro.hardware.generate`.
    """

    name: str
    sockets: Tuple[SocketSpec, ...]
    gpu_part: str = A100_40GB.name
    ssd_part: str = P5510.name
    socket_link_bw: float = QPI_BW
    generator_seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sockets", tuple(self.sockets))

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Check part references and structural sanity; raises."""
        if not self.sockets:
            raise ValueError(f"fabric {self.name!r} has no sockets")
        if self.socket_link_bw <= 0:
            raise ValueError("socket_link_bw must be > 0")
        resolve_gpu(self.gpu_part)
        resolve_ssd(self.ssd_part)

        def check_bank(bank: SlotBankSpec) -> None:
            if bank.gpu_part is not None:
                resolve_gpu(bank.gpu_part)
            if bank.ssd_part is not None:
                resolve_ssd(bank.ssd_part)

        def check_switch(sw: SwitchSpec) -> None:
            for bank in sw.banks:
                check_bank(bank)
            for child in sw.children:
                check_switch(child)

        for sock in self.sockets:
            resolve_cpu(sock.cpu_part)
            local = [b.name for b in sock.banks]
            if len(local) != len(set(local)):
                raise ValueError(
                    f"fabric {self.name!r}: duplicate bank names {local} "
                    "on one socket"
                )
            for bank in sock.banks:
                check_bank(bank)
            for sw in sock.switches:
                check_switch(sw)
            if sock.nic_storage is not None:
                check_bank(sock.nic_storage.bays)

    # -- JSON round-trip -------------------------------------------------
    def to_dict(self) -> Dict:
        d: Dict = {
            "schema": FABRIC_SCHEMA,
            "name": self.name,
            "gpu_part": self.gpu_part,
            "ssd_part": self.ssd_part,
            "socket_link_bw": self.socket_link_bw,
            "sockets": [s.to_dict() for s in self.sockets],
        }
        if self.generator_seed is not None:
            d["generator_seed"] = self.generator_seed
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "FabricSpec":
        schema = d.get("schema", FABRIC_SCHEMA)
        if schema != FABRIC_SCHEMA:
            raise ValueError(
                f"unsupported fabric schema {schema!r}; "
                f"expected {FABRIC_SCHEMA!r}"
            )
        seed = d.get("generator_seed")
        return cls(
            name=d["name"],
            sockets=tuple(
                SocketSpec.from_dict(s) for s in d.get("sockets", ())
            ),
            gpu_part=d.get("gpu_part", A100_40GB.name),
            ssd_part=d.get("ssd_part", P5510.name),
            socket_link_bw=float(d.get("socket_link_bw", QPI_BW)),
            generator_seed=None if seed is None else int(seed),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FabricSpec":
        return cls.from_dict(json.loads(text))


def load_fabric(path) -> FabricSpec:
    """Read a ``repro.fabric/v1`` JSON file into a :class:`FabricSpec`."""
    with open(path, "r", encoding="utf-8") as fh:
        return FabricSpec.from_dict(json.load(fh))


def save_fabric(spec: FabricSpec, path) -> None:
    """Write a spec as indented ``repro.fabric/v1`` JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spec.to_json())
        fh.write("\n")


# ----------------------------------------------------------------------
# The compiler: FabricSpec -> MachineSpec on the Chassis substrate
# ----------------------------------------------------------------------
def _bank_tag(spec: FabricSpec, bank: SlotBankSpec) -> str:
    """Symmetry tag for a bank: non-empty iff it overrides a part."""
    marks = []
    if bank.gpu_part is not None and bank.gpu_part != spec.gpu_part:
        marks.append(f"gpu={bank.gpu_part}")
    if bank.ssd_part is not None and bank.ssd_part != spec.ssd_part:
        marks.append(f"ssd={bank.ssd_part}")
    return ";".join(marks)


def compile_fabric(spec: FabricSpec) -> "MachineSpec":  # noqa: F821
    """Lower a :class:`FabricSpec` to a ``MachineSpec``.

    The lowering order is pinned so specs of the paper's machines
    reproduce the legacy constructors *exactly* (device numbering in
    :func:`~repro.core.placement.build_topology` follows slot-group
    declaration order, so order is part of the contract):

    1. root complexes ``rc{i}`` per socket, socket trunk(s) (``qpi``);
    2. DRAM banks ``mem{i}``, then CXL expanders ``cxl{i}``;
    3. switches in depth-first discovery order per socket, globally
       numbered ``plx{k}``, each adding its uplink trunk on discovery;
    4. NIC shelves ``nic{i}`` with their uplink trunks;
    5. slot groups: RC-direct banks round-robin by position across
       sockets (``rc0.x16, rc1.x16, rc0.bays, rc1.bays`` on Machine B),
       then switch banks in the same DFS order, then NIC-shelf bays.
    """
    from repro.hardware.machines import MachineSpec

    spec.validate()
    ch = Chassis(spec.name)
    nsock = len(spec.sockets)

    # 1. root complexes + socket interconnect
    for i in range(nsock):
        ch.add_interconnect(f"rc{i}", NodeKind.ROOT_COMPLEX)
    for i in range(nsock - 1):
        label = "qpi" if nsock == 2 else f"qpi{i}"
        ch.add_trunk(
            f"rc{i}", f"rc{i + 1}", spec.socket_link_bw, LinkKind.QPI, label
        )

    # 2. memory tiers
    for i, sock in enumerate(spec.sockets):
        cpu = resolve_cpu(sock.cpu_part)
        ch.add_memory(f"mem{i}", f"rc{i}", cpu.mem_bytes, cpu.mem_bw)
    for i, sock in enumerate(spec.sockets):
        if sock.cxl is not None:
            ch.add_memory(
                f"cxl{i}", f"rc{i}", sock.cxl.capacity_bytes, sock.cxl.bandwidth
            )

    # 3. switches (DFS, global numbering) — remember bank attach points
    switch_banks: List[Tuple[str, SlotBankSpec]] = []
    counter = itertools.count()

    def lower_switch(parent: str, sw: SwitchSpec) -> None:
        name = f"plx{next(counter)}"
        ch.add_interconnect(name, NodeKind.SWITCH)
        ch.add_trunk(parent, name, sw.uplink.bw, LinkKind.PCIE, sw.bus)
        for bank in sw.banks:
            switch_banks.append((name, bank))
        for child in sw.children:
            lower_switch(name, child)

    for i, sock in enumerate(spec.sockets):
        for sw in sock.switches:
            lower_switch(f"rc{i}", sw)

    # 4. NIC-attached storage shelves
    nic_banks: List[Tuple[str, SlotBankSpec]] = []
    for i, sock in enumerate(spec.sockets):
        shelf = sock.nic_storage
        if shelf is not None:
            name = f"nic{i}"
            ch.add_interconnect(name, NodeKind.NIC)
            ch.add_trunk(
                f"rc{i}",
                name,
                shelf.nic_bw,
                LinkKind.PCIE,
                shelf.bus or f"nvmeof{i}",
            )
            nic_banks.append((name, shelf.bays))

    # 5. slot groups
    gpu_overrides: List[Tuple[str, GpuSpec]] = []
    ssd_overrides: List[Tuple[str, SsdSpec]] = []

    def add_group(attach: str, bank: SlotBankSpec) -> None:
        gname = f"{attach}.{bank.name}"
        ch.add_slot_group(
            SlotGroup(
                gname,
                attach,
                bank.units,
                bank.link.bw,
                frozenset(bank.allowed),
                bank.bus,
                _bank_tag(spec, bank),
            )
        )
        if bank.gpu_part is not None and bank.gpu_part != spec.gpu_part:
            gpu_overrides.append((gname, resolve_gpu(bank.gpu_part)))
        if bank.ssd_part is not None and bank.ssd_part != spec.ssd_part:
            ssd_overrides.append((gname, resolve_ssd(bank.ssd_part)))

    for rank in range(max(len(s.banks) for s in spec.sockets) if spec.sockets else 0):
        for i, sock in enumerate(spec.sockets):
            if rank < len(sock.banks):
                add_group(f"rc{i}", sock.banks[rank])
    for attach, bank in switch_banks:
        add_group(attach, bank)
    for attach, bank in nic_banks:
        add_group(attach, bank)

    ch.validate()
    return MachineSpec(
        name=spec.name,
        chassis=ch,
        cpu=resolve_cpu(spec.sockets[0].cpu_part),
        gpu=resolve_gpu(spec.gpu_part),
        ssd=resolve_ssd(spec.ssd_part),
        num_sockets=nsock,
        gpu_overrides=tuple(gpu_overrides),
        ssd_overrides=tuple(ssd_overrides),
        fabric_spec=spec,
    )


# ----------------------------------------------------------------------
# The paper's machines, re-expressed as specs
# ----------------------------------------------------------------------
def machine_a_spec(cpu: CpuSpec = XEON_GOLD_5320) -> FabricSpec:
    """Machine A (balanced, Figure 1) as a :class:`FabricSpec`."""
    register_cpu_part(cpu)
    x4, x16 = LinkWidth(4, 4), LinkWidth(4, 16)

    def side(bay_bus: str, up_bus: str, slot_bus: str) -> SocketSpec:
        return SocketSpec(
            cpu_part=cpu.name,
            banks=(SlotBankSpec("bays", 4, x4, (SSD,), bay_bus),),
            switches=(
                SwitchSpec(
                    uplink=x16,
                    bus=up_bus,
                    banks=(
                        SlotBankSpec("slots", 12, x16, (GPU, SSD), slot_bus),
                    ),
                ),
            ),
        )

    return FabricSpec(
        name="machine_a",
        sockets=(
            side("bus1-4", "bus9", "bus12-15"),
            side("bus5-8", "bus10", "bus17-20"),
        ),
    )


def machine_b_spec(cpu: CpuSpec = XEON_GOLD_6426Y) -> FabricSpec:
    """Machine B (cascaded, Figure 2) as a :class:`FabricSpec`."""
    register_cpu_part(cpu)
    x4, x16 = LinkWidth(4, 4), LinkWidth(4, 16)
    cascade = SwitchSpec(
        uplink=x16,
        bus="bus11",
        banks=(SlotBankSpec("slots", 12, x16, (GPU, SSD), "bus12-15"),),
        children=(
            SwitchSpec(
                uplink=x16,
                bus="bus16",  # the contended link of Section 2.3
                banks=(
                    SlotBankSpec("slots", 12, x16, (GPU, SSD), "bus17-18"),
                ),
            ),
        ),
    )
    return FabricSpec(
        name="machine_b",
        sockets=(
            SocketSpec(
                cpu_part=cpu.name,
                banks=(
                    SlotBankSpec("x16", 2, x16, (GPU,), "bus10"),
                    SlotBankSpec("bays", 4, x4, (SSD,), "bus1-4"),
                ),
                switches=(cascade,),
            ),
            SocketSpec(
                cpu_part=cpu.name,
                banks=(
                    SlotBankSpec("x16", 2, x16, (GPU,), "bus19"),
                    SlotBankSpec("bays", 4, x4, (SSD,), "bus5-8"),
                ),
            ),
        ),
    )


@dataclass(frozen=True)
class ClusterFabricSpec:
    """A cluster: N identical nodes (each a :class:`FabricSpec`) on a NIC."""

    name: str
    num_machines: int
    node: FabricSpec
    nic_bw: float = NIC_100G_BW

    def to_dict(self) -> Dict:
        return {
            "schema": FABRIC_SCHEMA,
            "name": self.name,
            "num_machines": self.num_machines,
            "node": self.node.to_dict(),
            "nic_bw": self.nic_bw,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "ClusterFabricSpec":
        return cls(
            name=d["name"],
            num_machines=int(d["num_machines"]),
            node=FabricSpec.from_dict(d["node"]),
            nic_bw=float(d.get("nic_bw", NIC_100G_BW)),
        )


def cluster_c_spec() -> FabricSpec:
    """One Cluster-C node (dual Xeon Silver, one PCIe 3.0 x16 GPU slot)."""
    x16_gen3 = LinkWidth(3, 16)
    return FabricSpec(
        name="cluster_c_node",
        sockets=(
            SocketSpec(
                cpu_part=XEON_SILVER_4214.name,
                banks=(SlotBankSpec("x16", 2, x16_gen3, (GPU,), "bus1"),),
            ),
            SocketSpec(cpu_part=XEON_SILVER_4214.name),
        ),
    )


def cluster_c_fabric() -> ClusterFabricSpec:
    """Cluster C (four DistDGL nodes) as a declarative cluster spec."""
    return ClusterFabricSpec(
        name="cluster_c", num_machines=4, node=cluster_c_spec()
    )


def compile_cluster(spec: ClusterFabricSpec) -> "ClusterSpec":  # noqa: F821
    """Lower a cluster spec to the analytic ``ClusterSpec`` model."""
    from repro.hardware.machines import ClusterSpec

    node = spec.node
    node.validate()
    gpu_banks = [
        b for s in node.sockets for b in s.banks if GPU in b.allowed
    ]
    if not gpu_banks:
        raise ValueError(f"cluster node {node.name!r} has no GPU slot bank")
    return ClusterSpec(
        name=spec.name,
        num_machines=spec.num_machines,
        cpu=resolve_cpu(node.sockets[0].cpu_part),
        gpu=resolve_gpu(node.gpu_part),
        gpu_link_bw=gpu_banks[0].link.bw,
        nic_bw=spec.nic_bw,
    )


# ----------------------------------------------------------------------
# Fingerprints and run-record summaries
# ----------------------------------------------------------------------
def chassis_fingerprint(chassis: Chassis) -> str:
    """Short stable hash of a chassis' full structure.

    Covers interconnects (name+kind, in order), trunks, memory banks,
    and slot groups (including tags), so two chassis share a
    fingerprint iff they are structurally identical.  Numeric fields
    are canonicalised to float so a spec that came through a JSON
    round-trip (where ints become floats) fingerprints identically to
    the in-memory original.
    """
    payload = {
        "name": chassis.name,
        "interconnects": [
            [n, k.value] for n, k in chassis.interconnects.items()
        ],
        "trunks": [
            [t.a, t.b, float(t.capacity), t.kind.value, t.label]
            for t in chassis.trunks
        ],
        "memories": [
            [m.name, m.attach, float(m.capacity_bytes), float(m.bandwidth)]
            for m in chassis.memories
        ],
        "slot_groups": [
            [
                g.name,
                g.attach,
                g.units,
                float(g.link_bw),
                sorted(g.allowed),
                g.bus_label,
                g.tag,
            ]
            for g in chassis.slot_groups
        ],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:12]


def topology_fingerprint(topo: Topology) -> str:
    """Short stable hash of a topology's nodes and directed links.

    Numerics are canonicalised to float, matching
    :func:`chassis_fingerprint`.
    """
    payload = {
        "nodes": sorted(
            (
                n.name,
                n.kind.value,
                None if n.egress_bw is None else float(n.egress_bw),
            )
            for n in topo.nodes
        ),
        "links": sorted(
            (l.src, l.dst, float(l.capacity), l.kind.value, l.label)
            for l in topo.links
        ),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    )
    return digest.hexdigest()[:12]


def fabric_summary(machine: "MachineSpec", topo: Topology) -> Dict:  # noqa: F821
    """Shape summary of a built topology for run records.

    ``tiers`` counts distinct storage tiers present: GPU HBM, socket
    DRAM, CXL expanders (memory banks named ``cxl*``), and SSDs.
    """
    tiers = 0
    if any(n.kind is NodeKind.GPU_MEM for n in topo.nodes):
        tiers += 1
    cpu_mems = [n for n in topo.nodes if n.kind is NodeKind.CPU_MEM]
    if any(not n.name.startswith("cxl") for n in cpu_mems):
        tiers += 1
    if any(n.name.startswith("cxl") for n in cpu_mems):
        tiers += 1
    if any(n.kind is NodeKind.SSD for n in topo.nodes):
        tiers += 1
    fab = getattr(machine, "fabric_spec", None)
    return {
        "name": machine.name,
        "fingerprint": chassis_fingerprint(machine.chassis),
        "nodes": len(topo.nodes),
        "links": len(topo.links),
        "tiers": tiers,
        "generator_seed": (
            None if fab is None else getattr(fab, "generator_seed", None)
        ),
    }
