"""Simulated hardware bandwidth profiling (paper Section 3.1).

On the real system Moment "profiles bandwidths of hardware components
like SSDs, PCIe, and NVLinks, to establish throughput constraints".  We
cannot touch hardware, so the profiler *measures the simulator*: it
issues micro-benchmark transfer patterns (single-flow link probes,
SSD read sweeps over queue depths) against a topology, optionally with
measurement noise, and emits the per-edge capacity table the max-flow
model consumes.  This keeps the pipeline shape of the paper intact —
capacities come from profiling, not from reading the spec sheet —
and lets tests inject noisy profiles to study prediction robustness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.topology import Link, Topology, iter_physical_links
from repro.hardware.specs import SsdSpec
from repro.simulator.bandwidth import Flow, progressive_fill
from repro.simulator.iostack import effective_read_bw
from repro.simulator.routing import Router, link_key
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_nonnegative


@dataclass
class BandwidthProfile:
    """Measured sustained bandwidths, bytes/s."""

    #: directed physical links, (src, dst) -> bytes/s
    links: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: per-SSD sustained read at the profiled page size
    ssd_read: Dict[str, float] = field(default_factory=dict)

    def link_bw(self, src: str, dst: str) -> float:
        return self.links[(src, dst)]

    def apply(self, topo: Topology) -> Topology:
        """Return a topology whose link capacities are the *measured*
        values (profiling-informed model, as the paper builds)."""
        out = Topology(f"{topo.name}/profiled")
        for node in topo.nodes:
            if node.kind.value == "ssd" and node.name in self.ssd_read:
                from repro.core.topology import Node

                out.add_node(
                    Node(node.name, node.kind, self.ssd_read[node.name])
                )
            else:
                out.add_node(node)
        for link in topo.links:
            measured = self.links.get((link.src, link.dst), link.capacity)
            out.add_directed_link(
                Link(link.src, link.dst, measured, link.kind, link.label)
            )
        return out


class HardwareProfiler:
    """Micro-benchmarks a topology through the fair-share simulator.

    ``noise`` adds multiplicative Gaussian measurement error (fraction
    of the true value), reproducing run-to-run profiling variance.
    """

    def __init__(
        self,
        topo: Topology,
        ssd: Optional[SsdSpec] = None,
        noise: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        check_fraction("noise", max(0.0, min(noise, 1.0)))
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.topo = topo
        self.ssd = ssd
        self.noise = noise
        self.rng = ensure_rng(seed)
        self.router = Router(topo)

    def _observe(self, true_value: float) -> float:
        if self.noise <= 0:
            return true_value
        factor = 1.0 + self.noise * float(self.rng.standard_normal())
        return max(true_value * 0.1, true_value * factor)

    def probe_link(self, src: str, dst: str, probe_bytes: float = 1e9) -> float:
        """Single-flow saturation probe of one directed link."""
        check_nonnegative("probe_bytes", probe_bytes)
        result = progressive_fill(
            [Flow((link_key(src, dst),), probe_bytes)],
            {link_key(src, dst): self.topo.link(src, dst).capacity},
        )
        rate = probe_bytes / max(result.makespan, 1e-12)
        return self._observe(rate)

    def probe_ssd(
        self, page_bytes: int = 4096, queue_depth: int = 1024
    ) -> Dict[str, float]:
        """Random-read sweep over every drive at one page/QD point."""
        if self.ssd is None:
            return {}
        bw = effective_read_bw(self.ssd, page_bytes, queue_depth)
        return {name: self._observe(bw) for name in self.topo.ssds()}

    def profile(self) -> BandwidthProfile:
        """Full profiling pass: every physical link + every SSD."""
        profile = BandwidthProfile()
        for link in self.topo.links:
            profile.links[(link.src, link.dst)] = self.probe_link(
                link.src, link.dst
            )
        profile.ssd_read = self.probe_ssd()
        return profile

    def queue_depth_sweep(
        self, depths: List[int] = (1, 4, 16, 64, 256, 1024)
    ) -> Dict[int, float]:
        """Per-drive read bandwidth vs queue depth (the NVMe knee)."""
        if self.ssd is None:
            raise ValueError("no SSD spec to sweep")
        return {
            qd: self._observe(effective_read_bw(self.ssd, 4096, qd))
            for qd in depths
        }
