"""Seeded fabric generator/fuzzer.

Produces random-but-reproducible :class:`~repro.hardware.fabric.FabricSpec`
machines for property sweeps (``python -m repro.experiments
fabric-sweep``): mixed GPU generations, asymmetric PCIe trees (sockets
with different switch/bay complements, cascaded switches on one side
only), variable NVMe bay counts, an optional CXL memory tier, and an
optional NIC-attached NVMe shelf.

Every fabric is generated from a single integer seed through one
``numpy`` generator, so ``generate_fabric(seed)`` is bit-stable across
runs and machines — a failing sweep seed reproduces exactly.  Capacity
floors (:attr:`GeneratorConfig.min_gpu_slots` /
:attr:`~GeneratorConfig.min_ssd_slots`) guarantee the sweep's device
pool always physically fits, so every generated fabric admits at least
one placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.placement import GPU, SSD
from repro.hardware.fabric import (
    CxlMemSpec,
    FabricSpec,
    LinkWidth,
    NicStorageSpec,
    SlotBankSpec,
    SocketSpec,
    SwitchSpec,
    resolve_gpu,
    resolve_ssd,
)
from repro.hardware.specs import (
    A100_40GB,
    H100_80GB,
    P4510,
    P5510,
    PM1743,
    V100_32GB,
)
from repro.utils.units import GB


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the fabric fuzzer (all probabilities per socket)."""

    max_sockets: int = 2
    #: Max top-level switches per socket (0..N sampled uniformly).
    max_switches_per_socket: int = 2
    #: Chance a switch carries a cascaded child switch (Machine-B style).
    p_cascade: float = 0.35
    #: Chance the fabric mixes GPU generations across banks.
    p_mixed_gpus: float = 0.35
    #: Chance a bay bank uses a different SSD model than the primary.
    p_mixed_ssds: float = 0.25
    #: Chance a socket carries a CXL.mem expander.
    p_cxl: float = 0.30
    #: Chance a socket carries a NIC-attached NVMe shelf.
    p_nic_storage: float = 0.20
    #: Capacity floors: the generated machine must physically seat at
    #: least this many GPUs / SSDs (patched in if sampling fell short).
    min_gpu_slots: int = 2
    min_ssd_slots: int = 4


#: GPU parts the fuzzer draws from (selection weights alongside).
_GPU_POOL = (A100_40GB, V100_32GB, H100_80GB)
_GPU_WEIGHTS = (0.5, 0.25, 0.25)
_SSD_POOL = (P5510, P4510, PM1743)
_SSD_WEIGHTS = (0.5, 0.25, 0.25)


def _pick(rng: np.random.Generator, pool, weights):
    return pool[int(rng.choice(len(pool), p=np.asarray(weights)))]


def _bay_bank(
    rng: np.random.Generator,
    name: str,
    ssd_part,
    primary_ssd,
    bus: str,
) -> SlotBankSpec:
    units = int(rng.integers(2, 7))  # 2..6 NVMe bays
    return SlotBankSpec(
        name=name,
        units=units,
        link=LinkWidth(ssd_part.pcie_gen, 4),
        allowed=(SSD,),
        bus=bus,
        ssd_part=ssd_part.name if ssd_part.name != primary_ssd.name else None,
    )


def _slot_bank(
    rng: np.random.Generator,
    gpu_part,
    primary_gpu,
    bus: str,
) -> SlotBankSpec:
    units = int(rng.integers(8, 15))  # 8..14 slot units
    gen = max(4, gpu_part.pcie_gen)
    return SlotBankSpec(
        name="slots",
        units=units,
        link=LinkWidth(gen, 16),
        allowed=(GPU, SSD),
        bus=bus,
        gpu_part=gpu_part.name if gpu_part.name != primary_gpu.name else None,
    )


def _switch(
    rng: np.random.Generator,
    config: GeneratorConfig,
    primary_gpu,
    mixed: bool,
    depth: int,
    bus_counter: List[int],
) -> SwitchSpec:
    def next_bus() -> str:
        bus_counter[0] += 1
        return f"gbus{bus_counter[0]}"

    gpu_part = (
        _pick(rng, _GPU_POOL, _GPU_WEIGHTS) if mixed and rng.random() < 0.5
        else primary_gpu
    )
    bank = _slot_bank(rng, gpu_part, primary_gpu, next_bus())
    children: Tuple[SwitchSpec, ...] = ()
    if depth > 0 and rng.random() < config.p_cascade:
        children = (
            _switch(rng, config, primary_gpu, mixed, depth - 1, bus_counter),
        )
    return SwitchSpec(
        uplink=LinkWidth(int(rng.choice((4, 4, 5))), 16),
        bus=next_bus(),
        banks=(bank,),
        children=children,
    )


def generate_fabric(
    seed: int, config: Optional[GeneratorConfig] = None
) -> FabricSpec:
    """One reproducible random fabric for ``seed`` (named
    ``fabric-gen-<seed>``, provenance in ``generator_seed``)."""
    config = config or GeneratorConfig()
    rng = np.random.default_rng(seed)
    bus_counter = [0]

    primary_gpu = _pick(rng, _GPU_POOL, _GPU_WEIGHTS)
    primary_ssd = _pick(rng, _SSD_POOL, _SSD_WEIGHTS)
    mixed = bool(rng.random() < config.p_mixed_gpus)
    nsock = int(rng.integers(1, config.max_sockets + 1))

    sockets: List[SocketSpec] = []
    for i in range(nsock):
        banks: List[SlotBankSpec] = []
        if rng.random() < 0.8:  # NVMe bays directly on the RC
            ssd_part = (
                _pick(rng, _SSD_POOL, _SSD_WEIGHTS)
                if rng.random() < config.p_mixed_ssds
                else primary_ssd
            )
            bus_counter[0] += 1
            banks.append(
                _bay_bank(
                    rng, "bays", ssd_part, primary_ssd, f"gbus{bus_counter[0]}"
                )
            )
        if rng.random() < 0.3:  # a direct x16 GPU slot on the RC
            bus_counter[0] += 1
            banks.append(
                SlotBankSpec(
                    name="x16",
                    units=2,
                    link=LinkWidth(primary_gpu.pcie_gen, 16),
                    allowed=(GPU,),
                    bus=f"gbus{bus_counter[0]}",
                )
            )
        n_switches = int(rng.integers(0, config.max_switches_per_socket + 1))
        switches = tuple(
            _switch(rng, config, primary_gpu, mixed, depth=1,
                    bus_counter=bus_counter)
            for _ in range(n_switches)
        )
        sockets.append(
            SocketSpec(
                cpu_part="Xeon-Gold-5320",
                banks=tuple(banks),
                switches=switches,
                cxl=(
                    CxlMemSpec() if rng.random() < config.p_cxl else None
                ),
                nic_storage=(
                    NicStorageSpec(
                        bays=_bay_bank(
                            rng, "shelf", primary_ssd, primary_ssd, "nvmeof"
                        ),
                        nic_bw=float(rng.choice((12.5, 25.0))) * GB,
                    )
                    if rng.random() < config.p_nic_storage
                    else None
                ),
            )
        )

    spec = FabricSpec(
        name=f"fabric-gen-{seed}",
        sockets=tuple(sockets),
        gpu_part=primary_gpu.name,
        ssd_part=primary_ssd.name,
        generator_seed=int(seed),
    )
    spec = _ensure_capacity(spec, config)
    spec.validate()
    return spec


def _ensure_capacity(spec: FabricSpec, config: GeneratorConfig) -> FabricSpec:
    """Patch in a fallback switch/bay bank when sampling under-provisioned
    the fabric (floors guarantee the sweep's device pool always fits)."""
    import dataclasses

    sockets = list(spec.sockets)
    if gpu_slot_capacity(spec) < config.min_gpu_slots:
        fallback = SwitchSpec(
            uplink=LinkWidth(4, 16),
            bus="gbus-fallback",
            banks=(
                SlotBankSpec(
                    "slots", 12, LinkWidth(4, 16), (GPU, SSD), "gbus-fb-slots"
                ),
            ),
        )
        sockets[0] = dataclasses.replace(
            sockets[0], switches=sockets[0].switches + (fallback,)
        )
        spec = dataclasses.replace(spec, sockets=tuple(sockets))
    if ssd_slot_capacity(spec) < config.min_ssd_slots:
        extra = SlotBankSpec(
            "bays-extra",
            max(4, config.min_ssd_slots),
            LinkWidth(4, 4),
            (SSD,),
            "gbus-fb-bays",
        )
        sockets = list(spec.sockets)
        sockets[0] = dataclasses.replace(
            sockets[0], banks=sockets[0].banks + (extra,)
        )
        spec = dataclasses.replace(spec, sockets=tuple(sockets))
    return spec


def fleet(
    seeds: Iterable[int], config: Optional[GeneratorConfig] = None
) -> List[FabricSpec]:
    """Generated fabrics for every seed, in order."""
    return [generate_fabric(s, config) for s in seeds]


# ----------------------------------------------------------------------
# Shape predicates (sweep coverage assertions)
# ----------------------------------------------------------------------
def _bank_shape(bank: SlotBankSpec) -> Tuple:
    return (bank.name, bank.units, bank.link.gen, bank.link.lanes,
            tuple(sorted(bank.allowed)), bank.gpu_part, bank.ssd_part)


def _switch_shape(sw: SwitchSpec) -> Tuple:
    return (
        (sw.uplink.gen, sw.uplink.lanes),
        tuple(_bank_shape(b) for b in sw.banks),
        tuple(_switch_shape(c) for c in sw.children),
    )


def _socket_shape(sock: SocketSpec) -> Tuple:
    return (
        tuple(_bank_shape(b) for b in sock.banks),
        tuple(_switch_shape(s) for s in sock.switches),
        sock.cxl is not None,
        sock.nic_storage is not None,
    )


def is_asymmetric(spec: FabricSpec) -> bool:
    """Whether the PCIe tree differs across sockets (or cascades within
    one), i.e. the fabric is not a mirrored Machine-A-style layout."""
    shapes = [_socket_shape(s) for s in spec.sockets]
    if len(set(shapes)) > 1:
        return True
    return any(
        sw.children for sock in spec.sockets for sw in sock.switches
    )


def has_cxl(spec: FabricSpec) -> bool:
    """Whether any socket carries a CXL memory expander."""
    return any(s.cxl is not None for s in spec.sockets)


def has_nic_storage(spec: FabricSpec) -> bool:
    """Whether any socket carries a NIC-attached NVMe shelf."""
    return any(s.nic_storage is not None for s in spec.sockets)


def has_mixed_gpus(spec: FabricSpec) -> bool:
    """Whether any bank overrides the primary GPU part."""

    def banks(sw: SwitchSpec):
        yield from sw.banks
        for c in sw.children:
            yield from banks(c)

    for sock in spec.sockets:
        for bank in sock.banks:
            if bank.gpu_part and bank.gpu_part != spec.gpu_part:
                return True
        for sw in sock.switches:
            for bank in banks(sw):
                if bank.gpu_part and bank.gpu_part != spec.gpu_part:
                    return True
    return False


def gpu_slot_capacity(spec: FabricSpec) -> int:
    """Max GPUs the fabric can physically seat (dual-width cards)."""
    return sum(
        b.units // resolve_gpu(b.gpu_part or spec.gpu_part).slot_units
        for b in _all_banks(spec)
        if GPU in b.allowed
    )


def ssd_slot_capacity(spec: FabricSpec) -> int:
    """Max SSDs the fabric can physically seat (ignoring GPUs)."""
    return sum(
        b.units // resolve_ssd(b.ssd_part or spec.ssd_part).slot_units
        for b in _all_banks(spec)
        if SSD in b.allowed
    )


def _all_banks(spec: FabricSpec):
    def from_switch(sw: SwitchSpec):
        yield from sw.banks
        for c in sw.children:
            yield from from_switch(c)

    for sock in spec.sockets:
        yield from sock.banks
        for sw in sock.switches:
            yield from from_switch(sw)
        if sock.nic_storage is not None:
            yield sock.nic_storage.bays
