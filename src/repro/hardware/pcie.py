"""Textual PCIe-tree description parser (the lspci/dmidecode stand-in).

On real hardware Moment "extracts the server's communication topology
via Linux commands and libraries like lspci and dmidecode" (Section
3.1).  We substitute a small declarative text format describing the
same information — root complexes, switches, trunk links with lane
widths, DRAM banks, and slot groups — and parse it into a
:class:`~repro.core.placement.Chassis`.  Machine descriptions can then
be versioned as plain files and fed to the optimizer exactly like the
built-in Machine A/B models.

Format (``#`` comments, blank lines ignored)::

    machine my_server
    rc rc0
    rc rc1
    switch plx0
    link rc0 rc1 qpi            # socket interconnect
    link rc0 plx0 pcie4 x16 bus9
    mem mem0 rc0 384GiB
    slots rc0.bays rc0 4 x4 ssd bus1-4
    slots plx0.slots plx0 12 x16 gpu,ssd bus12-15

Widths are ``x1..x16``; ``pcieN`` selects the generation; byte sizes
accept ``GiB``/``GB`` suffixes.
"""

from __future__ import annotations

import re
from typing import List

from repro.core.placement import Chassis, SlotGroup
from repro.core.topology import LinkKind, NodeKind
from repro.hardware.specs import NVLINK_BW, QPI_BW, pcie_bw
from repro.utils.units import GB, GiB


class PcieParseError(ValueError):
    """A malformed line in a chassis description."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line!r}")
        self.lineno = lineno
        self.line = line


_SIZE_RE = re.compile(r"^(\d+(?:\.\d+)?)(GiB|GB|TiB|TB|MiB|MB)$")
_SIZE_UNITS = {
    "GiB": GiB,
    "GB": GB,
    "TiB": GiB * 1024,
    "TB": GB * 1000,
    "MiB": GiB / 1024,
    "MB": GB / 1000,
}


def _parse_size(token: str, lineno: int, line: str) -> float:
    m = _SIZE_RE.match(token)
    if not m:
        raise PcieParseError(lineno, line, f"bad size {token!r}")
    return float(m.group(1)) * _SIZE_UNITS[m.group(2)]


def _parse_width(token: str, lineno: int, line: str) -> int:
    if not token.startswith("x"):
        raise PcieParseError(lineno, line, f"bad lane width {token!r}")
    try:
        lanes = int(token[1:])
    except ValueError:
        raise PcieParseError(lineno, line, f"bad lane width {token!r}")
    return lanes


def parse_chassis(text: str) -> Chassis:
    """Parse a chassis description; see the module docstring for the
    grammar.  Raises :class:`PcieParseError` with the offending line."""
    chassis: Chassis = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kw = tokens[0].lower()

        if kw == "machine":
            if len(tokens) != 2:
                raise PcieParseError(lineno, raw, "machine needs a name")
            if chassis is not None:
                raise PcieParseError(lineno, raw, "duplicate machine line")
            chassis = Chassis(tokens[1])
            continue
        if chassis is None:
            raise PcieParseError(lineno, raw, "first line must be 'machine'")

        try:
            if kw == "rc":
                chassis.add_interconnect(tokens[1], NodeKind.ROOT_COMPLEX)
            elif kw == "switch":
                chassis.add_interconnect(tokens[1], NodeKind.SWITCH)
            elif kw == "link":
                _parse_link(chassis, tokens, lineno, raw)
            elif kw == "mem":
                if len(tokens) != 4:
                    raise PcieParseError(
                        lineno, raw, "mem needs: name attach size"
                    )
                size = _parse_size(tokens[3], lineno, raw)
                from repro.hardware.specs import CPU_MEM_BW

                chassis.add_memory(tokens[1], tokens[2], size, CPU_MEM_BW)
            elif kw == "slots":
                _parse_slots(chassis, tokens, lineno, raw)
            else:
                raise PcieParseError(lineno, raw, f"unknown keyword {kw!r}")
        except PcieParseError:
            raise
        except (ValueError, IndexError, KeyError) as err:
            raise PcieParseError(lineno, raw, str(err)) from err

    if chassis is None:
        raise PcieParseError(0, "", "empty description (no 'machine' line)")
    chassis.validate()
    return chassis


def _parse_link(chassis: Chassis, tokens: List[str], lineno: int, raw: str):
    if len(tokens) < 4:
        raise PcieParseError(lineno, raw, "link needs: a b kind [width] [label]")
    a, b, kind_token = tokens[1], tokens[2], tokens[3].lower()
    label = ""
    if kind_token == "qpi":
        chassis.add_trunk(a, b, QPI_BW, LinkKind.QPI, tokens[4] if len(tokens) > 4 else "qpi")
        return
    if kind_token == "nvlink":
        chassis.add_trunk(a, b, NVLINK_BW, LinkKind.NVLINK,
                          tokens[4] if len(tokens) > 4 else "nvlink")
        return
    m = re.match(r"^pcie(\d)$", kind_token)
    if not m:
        raise PcieParseError(lineno, raw, f"unknown link kind {kind_token!r}")
    gen = int(m.group(1))
    if len(tokens) < 5:
        raise PcieParseError(lineno, raw, "pcie link needs a lane width")
    lanes = _parse_width(tokens[4], lineno, raw)
    if len(tokens) > 5:
        label = tokens[5]
    chassis.add_trunk(a, b, pcie_bw(gen, lanes), LinkKind.PCIE, label)


def _parse_slots(chassis: Chassis, tokens: List[str], lineno: int, raw: str):
    if len(tokens) < 6:
        raise PcieParseError(
            lineno, raw, "slots needs: name attach units width kinds [label]"
        )
    name, attach = tokens[1], tokens[2]
    units = int(tokens[3])
    lanes = _parse_width(tokens[4], lineno, raw)
    kinds = frozenset(tokens[5].split(","))
    label = tokens[6] if len(tokens) > 6 else ""
    chassis.add_slot_group(
        SlotGroup(name, attach, units, pcie_bw(4, lanes), kinds, label)
    )


def render_chassis(chassis: Chassis) -> str:
    """Emit a parseable description of a chassis (round-trip support)."""
    lines = [f"machine {chassis.name}"]
    for name, kind in chassis.interconnects.items():
        lines.append(
            f"{'rc' if kind is NodeKind.ROOT_COMPLEX else 'switch'} {name}"
        )
    for t in chassis.trunks:
        if t.kind is LinkKind.QPI:
            lines.append(f"link {t.a} {t.b} qpi {t.label}".rstrip())
        elif t.kind is LinkKind.NVLINK:
            lines.append(f"link {t.a} {t.b} nvlink {t.label}".rstrip())
        else:
            lanes = max(1, round(t.capacity / pcie_bw(4, 1)))
            lines.append(
                f"link {t.a} {t.b} pcie4 x{lanes} {t.label}".rstrip()
            )
    for mem in chassis.memories:
        lines.append(
            f"mem {mem.name} {mem.attach} {mem.capacity_bytes / GiB:.0f}GiB"
        )
    for g in chassis.slot_groups:
        lanes = max(1, round(g.link_bw / pcie_bw(4, 1)))
        kinds = ",".join(sorted(g.allowed))
        lines.append(
            f"slots {g.name} {g.attach} {g.units} x{lanes} {kinds} "
            f"{g.bus_label}".rstrip()
        )
    return "\n".join(lines) + "\n"
