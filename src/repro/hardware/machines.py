"""The paper's evaluation platforms (Tables 1/3, Figures 1, 2, 7).

* :func:`machine_a` — balanced PCIe topology: two mirrored sides, each a
  root complex with four direct NVMe bays (buses 1–4 / 5–8) and a PCIe
  switch on a x16 uplink (bus 9 / bus 10) carrying twelve slot units.
* :func:`machine_b` — cascaded PCIe topology: RC0 feeds switch 0 over
  bus 11, switch 1 hangs off switch 0 over bus 16 (the contended link of
  Section 2.3), RC0/RC1 each expose one direct x16 slot, and RC1 carries
  four NVMe bays.
* :func:`cluster_c` — the four-node DistDGL cluster, described by specs
  only (the distributed baseline is modelled analytically).

The four "classic" layouts of Figures 1/2 are provided as named
placements, and :func:`classic_layouts` returns them in paper order
(a)–(d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.placement import (
    Chassis,
    GPU,
    Placement,
    SSD,
    SlotGroup,
    build_topology,
)
from repro.core.topology import LinkKind, NodeKind, Topology
from repro.hardware.specs import (
    A100_40GB,
    CPU_MEM_BW,
    GpuSpec,
    NIC_100G_BW,
    P5510,
    PCIE3_X16,
    PCIE4_X16,
    PCIE4_X4,
    QPI_BW,
    SsdSpec,
    XEON_GOLD_5320,
    XEON_GOLD_6426Y,
    XEON_SILVER_4214,
    CpuSpec,
)
from repro.utils.units import GiB


@dataclass(frozen=True)
class MachineSpec:
    """A machine: chassis plus its CPU/GPU/SSD part numbers.

    ``gpu``/``ssd`` are the *primary* parts (memory budgeting, capacity
    planning); heterogeneous fabrics list per-slot-group deviations in
    ``gpu_overrides``/``ssd_overrides`` (tuples of ``(group_name,
    part)`` pairs so the spec stays hashable and pickles into search
    worker processes).  ``fabric_spec`` records the declarative
    :class:`~repro.hardware.fabric.FabricSpec` this machine was
    compiled from, when it was (None for hand-built chassis).
    """

    name: str
    chassis: Chassis
    cpu: CpuSpec
    gpu: GpuSpec
    ssd: SsdSpec
    num_sockets: int = 2
    gpu_overrides: Tuple[Tuple[str, GpuSpec], ...] = ()
    ssd_overrides: Tuple[Tuple[str, SsdSpec], ...] = ()
    fabric_spec: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def build(
        self,
        placement: Placement,
        nvlink_pairs: Optional[Sequence[Tuple[int, int]]] = None,
        validate: bool = True,
    ) -> Topology:
        """Instantiate the runtime topology for a placement.

        ``validate=False`` skips the chassis/topology invariant sweeps —
        the search engine's hot path builds hundreds of topologies from
        the already-validated enumeration and opts out.
        """
        return build_topology(
            placement,
            self.gpu,
            self.ssd,
            nvlink_pairs=nvlink_pairs,
            name=f"{self.name}/{placement.name or 'custom'}",
            gpu_specs=dict(self.gpu_overrides) or None,
            ssd_specs=dict(self.ssd_overrides) or None,
            validate=validate,
        )

    @property
    def cpu_mem_total(self) -> float:
        """Total DRAM across both sockets (bytes)."""
        return self.cpu.mem_bytes * self.num_sockets


def _two_socket_skeleton(chassis: Chassis, cpu: CpuSpec) -> None:
    """Common dual-socket base: two root complexes, QPI, two DRAM banks."""
    chassis.add_interconnect("rc0", NodeKind.ROOT_COMPLEX)
    chassis.add_interconnect("rc1", NodeKind.ROOT_COMPLEX)
    chassis.add_trunk("rc0", "rc1", QPI_BW, LinkKind.QPI, "qpi")
    chassis.add_memory("mem0", "rc0", cpu.mem_bytes, cpu.mem_bw)
    chassis.add_memory("mem1", "rc1", cpu.mem_bytes, cpu.mem_bw)


def machine_a(cpu: CpuSpec = XEON_GOLD_5320) -> MachineSpec:
    """Machine A: balanced topology (Figure 1).

    Compiled from its declarative spec
    (:func:`repro.hardware.fabric.machine_a_spec`); the hand-built
    :func:`_legacy_machine_a` is kept as the equality oracle for the
    compiler tests.
    """
    from repro.hardware.fabric import compile_fabric, machine_a_spec

    return compile_fabric(machine_a_spec(cpu))


def _legacy_machine_a(cpu: CpuSpec = XEON_GOLD_5320) -> MachineSpec:
    """Machine A via the original imperative construction path."""
    ch = Chassis("machine_a")
    _two_socket_skeleton(ch, cpu)
    ch.add_interconnect("plx0", NodeKind.SWITCH)
    ch.add_interconnect("plx1", NodeKind.SWITCH)
    ch.add_trunk("rc0", "plx0", PCIE4_X16, LinkKind.PCIE, "bus9")
    ch.add_trunk("rc1", "plx1", PCIE4_X16, LinkKind.PCIE, "bus10")
    # Four direct NVMe bays per socket (buses 1-4 on the left in Fig 1b).
    ch.add_slot_group(
        SlotGroup("rc0.bays", "rc0", 4, PCIE4_X4, frozenset({SSD}), "bus1-4")
    )
    ch.add_slot_group(
        SlotGroup("rc1.bays", "rc1", 4, PCIE4_X4, frozenset({SSD}), "bus5-8")
    )
    # Twelve slot units per switch: up to 4 dual-width GPUs plus SSDs.
    ch.add_slot_group(
        SlotGroup("plx0.slots", "plx0", 12, PCIE4_X16, frozenset({GPU, SSD}), "bus12-15")
    )
    ch.add_slot_group(
        SlotGroup("plx1.slots", "plx1", 12, PCIE4_X16, frozenset({GPU, SSD}), "bus17-20")
    )
    ch.validate()
    return MachineSpec("machine_a", ch, cpu, A100_40GB, P5510)


def machine_b(cpu: CpuSpec = XEON_GOLD_6426Y) -> MachineSpec:
    """Machine B: cascaded topology (Figure 2; Fig 7 for Moment's layout).

    Compiled from :func:`repro.hardware.fabric.machine_b_spec`; the
    hand-built :func:`_legacy_machine_b` remains the equality oracle.
    """
    from repro.hardware.fabric import compile_fabric, machine_b_spec

    return compile_fabric(machine_b_spec(cpu))


def _legacy_machine_b(cpu: CpuSpec = XEON_GOLD_6426Y) -> MachineSpec:
    """Machine B via the original imperative construction path."""
    ch = Chassis("machine_b")
    _two_socket_skeleton(ch, cpu)
    ch.add_interconnect("plx0", NodeKind.SWITCH)
    ch.add_interconnect("plx1", NodeKind.SWITCH)
    ch.add_trunk("rc0", "plx0", PCIE4_X16, LinkKind.PCIE, "bus11")
    ch.add_trunk("plx0", "plx1", PCIE4_X16, LinkKind.PCIE, "bus16")
    # Direct x16 slots on both sockets (used by Moment's Fig-7 layout).
    ch.add_slot_group(
        SlotGroup("rc0.x16", "rc0", 2, PCIE4_X16, frozenset({GPU}), "bus10")
    )
    ch.add_slot_group(
        SlotGroup("rc1.x16", "rc1", 2, PCIE4_X16, frozenset({GPU}), "bus19")
    )
    # NVMe bays: four per socket ("SSD prioritizes the front board").
    ch.add_slot_group(
        SlotGroup("rc0.bays", "rc0", 4, PCIE4_X4, frozenset({SSD}), "bus1-4")
    )
    ch.add_slot_group(
        SlotGroup("rc1.bays", "rc1", 4, PCIE4_X4, frozenset({SSD}), "bus5-8")
    )
    # Cascaded switches, twelve slot units each.
    ch.add_slot_group(
        SlotGroup("plx0.slots", "plx0", 12, PCIE4_X16, frozenset({GPU, SSD}), "bus12-15")
    )
    ch.add_slot_group(
        SlotGroup("plx1.slots", "plx1", 12, PCIE4_X16, frozenset({GPU, SSD}), "bus17-18")
    )
    ch.validate()
    return MachineSpec("machine_b", ch, cpu, A100_40GB, P5510)


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster C: four single-GPU machines on a 100 Gbps network."""

    name: str
    num_machines: int
    cpu: CpuSpec
    gpu: GpuSpec
    gpu_link_bw: float
    nic_bw: float

    @property
    def cpu_mem_per_machine(self) -> float:
        """DRAM per cluster node (dual socket, bytes)."""
        return self.cpu.mem_bytes * 2  # dual socket

    @property
    def total_cpu_mem(self) -> float:
        """Aggregate DRAM across the cluster (bytes)."""
        return self.cpu_mem_per_machine * self.num_machines


def cluster_c() -> ClusterSpec:
    """Cluster C, lowered from its declarative spec
    (:func:`repro.hardware.fabric.cluster_c_fabric`)."""
    from repro.hardware.fabric import cluster_c_fabric, compile_cluster

    return compile_cluster(cluster_c_fabric())


# ----------------------------------------------------------------------
# The four classic layouts of Figures 1 and 2
# ----------------------------------------------------------------------
def _counts(**groups: Dict[str, int]) -> Dict[str, Dict[str, int]]:
    return {g.replace("__", "."): v for g, v in groups.items()}


def classic_layouts(
    machine: MachineSpec, num_gpus: int = 4, num_ssds: int = 8
) -> Dict[str, Placement]:
    """Layouts (a)-(d) from the paper's Figures 1/2.

    * ``a`` — SSDs on the front-board direct bays, GPUs split across the
      two switches;
    * ``b`` — SSDs on the bays, all GPUs on one switch (P2P-prioritised);
    * ``c`` — SSDs split across the switches next to the GPUs, GPUs
      split too (the best classic layout);
    * ``d`` — SSDs split across switches, all GPUs on one switch.

    ``num_gpus``/``num_ssds`` scale the layouts for the 1-4 GPU
    scalability studies; devices are assigned in the same spirit
    (GPUs split or together, SSDs bays-first or switch-split).
    """
    ch = machine.chassis
    is_b = "rc0.x16" in ch.group_names

    def split(n: int) -> Tuple[int, int]:
        return (n + 1) // 2, n // 2

    g0, g1 = split(num_gpus)
    s0, s1 = split(num_ssds)
    bay0 = min(num_ssds, 4)
    bay1 = min(num_ssds - bay0, 4)
    if bay0 + bay1 < num_ssds:
        raise ValueError("classic bay layouts support at most 8 SSDs")

    layouts = {
        "a": Placement(
            ch,
            {
                "rc0.bays": {SSD: bay0},
                "rc1.bays": {SSD: bay1},
                "plx0.slots": {GPU: g0},
                "plx1.slots": {GPU: g1},
            },
            name="classic_a",
        ),
        "b": Placement(
            ch,
            {
                "rc0.bays": {SSD: bay0},
                "rc1.bays": {SSD: bay1},
                "plx0.slots": {GPU: num_gpus},
            },
            name="classic_b",
        ),
        "c": Placement(
            ch,
            {
                "plx0.slots": {GPU: g0, SSD: s0},
                "plx1.slots": {GPU: g1, SSD: s1},
            },
            name="classic_c",
        ),
        "d": Placement(
            ch,
            {
                "plx0.slots": {GPU: num_gpus, SSD: min(s0, 12 - 2 * num_gpus)},
                "plx1.slots": {SSD: num_ssds - min(s0, 12 - 2 * num_gpus)},
            },
            name="classic_d",
        ),
    }
    return layouts


def moment_paper_layout_b(machine: MachineSpec) -> Placement:
    """The placement Moment's optimizer reports on Machine B (Figure 7):
    GPU0 on RC0's direct slot, GPU3 on RC1's, four SSDs on RC1's bays,
    two SSDs on switch 0, two SSDs plus two GPUs on switch 1."""
    ch = machine.chassis
    if "rc0.x16" not in ch.group_names:
        raise ValueError("Figure-7 layout is specific to Machine B")
    return Placement(
        ch,
        {
            "rc0.x16": {GPU: 1},
            "rc1.x16": {GPU: 1},
            "rc1.bays": {SSD: 4},
            "plx0.slots": {SSD: 2},
            "plx1.slots": {GPU: 2, SSD: 2},
        },
        name="moment_fig7",
    )
