"""Evaluation-platform models: device specs, machines A/B, Cluster C."""

from repro.hardware.specs import (
    A100_40GB,
    CPU_MEM_BW,
    GPU_HBM_BW,
    GpuSpec,
    NVLINK_BW,
    P5510,
    PCIE3_X16,
    PCIE4_X16,
    PCIE4_X4,
    QPI_BW,
    SsdSpec,
    CpuSpec,
    pcie_bw,
)
from repro.hardware.machines import (
    ClusterSpec,
    MachineSpec,
    classic_layouts,
    cluster_c,
    machine_a,
    machine_b,
    moment_paper_layout_b,
)

__all__ = [
    "A100_40GB",
    "CPU_MEM_BW",
    "GPU_HBM_BW",
    "GpuSpec",
    "NVLINK_BW",
    "P5510",
    "PCIE3_X16",
    "PCIE4_X16",
    "PCIE4_X4",
    "QPI_BW",
    "SsdSpec",
    "CpuSpec",
    "pcie_bw",
    "ClusterSpec",
    "MachineSpec",
    "classic_layouts",
    "cluster_c",
    "machine_a",
    "machine_b",
    "moment_paper_layout_b",
]
