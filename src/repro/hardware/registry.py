"""Machine registry: resolve hardware by name, seed, or spec file.

Everything that names hardware — ``RunSpec``, the CLI (``python -m
repro.hardware``), experiment runners — resolves through
:func:`get_machine`, which accepts:

* a registered name (``"machine_a"``, ``"machine_b"``, or the short
  aliases ``"a"``/``"b"``);
* ``"gen:<seed>"`` — a generated fabric from
  :func:`repro.hardware.generate.generate_fabric`;
* a path to a ``repro.fabric/v1`` JSON file (compiled through
  :func:`repro.hardware.fabric.compile_fabric`);
* a path to a textual chassis description
  (:func:`repro.hardware.pcie.parse_chassis`), wrapped with the paper's
  default device parts.

New machines register with :func:`register_machine`; ``python -m
repro.hardware list`` enumerates the registry instead of a hard-coded
machine list.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.hardware.machines import MachineSpec


@dataclass(frozen=True)
class MachineEntry:
    """One registry row: a named hardware factory."""

    name: str
    factory: Callable[[], object]
    kind: str = "machine"  # "machine" (MachineSpec) or "cluster"
    description: str = ""


_REGISTRY: Dict[str, MachineEntry] = {}
_ALIASES: Dict[str, str] = {}


def register_machine(
    name: str,
    factory: Callable[[], object],
    *,
    kind: str = "machine",
    description: str = "",
    aliases: tuple = (),
) -> None:
    """Register a hardware factory under ``name`` (plus aliases)."""
    if name in _REGISTRY:
        raise ValueError(f"machine {name!r} already registered")
    _REGISTRY[name] = MachineEntry(name, factory, kind, description)
    for alias in aliases:
        if alias in _ALIASES or alias in _REGISTRY:
            raise ValueError(f"alias {alias!r} already taken")
        _ALIASES[alias] = name


def list_machines() -> List[MachineEntry]:
    """All registered machines, in registration order."""
    return list(_REGISTRY.values())


def _known() -> str:
    names = [e.name for e in _REGISTRY.values()]
    return (
        f"{', '.join(names)}, 'gen:<seed>', or a path to a "
        "repro.fabric/v1 JSON / chassis text file"
    )


def get_machine(name: str) -> MachineSpec:
    """Resolve ``name`` to a compiled :class:`MachineSpec` (see module
    docstring for the accepted forms).  Raises ``KeyError`` for unknown
    names and ``ValueError`` for registered non-machine hardware
    (Cluster C is an analytic model, not a placeable chassis)."""
    canonical = _ALIASES.get(name, name)
    entry = _REGISTRY.get(canonical)
    if entry is not None:
        if entry.kind != "machine":
            raise ValueError(
                f"{entry.name!r} is a {entry.kind} spec, not a placeable "
                "machine; it has no chassis to run placements on"
            )
        return entry.factory()

    if name.startswith("gen:"):
        from repro.hardware.fabric import compile_fabric
        from repro.hardware.generate import generate_fabric

        try:
            seed = int(name[len("gen:"):])
        except ValueError:
            raise KeyError(
                f"bad generated-fabric reference {name!r}; "
                "expected 'gen:<integer seed>'"
            ) from None
        return compile_fabric(generate_fabric(seed))

    if os.path.exists(name):
        if name.endswith(".json"):
            from repro.hardware.fabric import compile_fabric, load_fabric

            return compile_fabric(load_fabric(name))
        from repro.hardware.pcie import parse_chassis
        from repro.hardware.specs import A100_40GB, P5510, XEON_GOLD_5320
        from repro.core.topology import NodeKind

        with open(name, "r", encoding="utf-8") as fh:
            chassis = parse_chassis(fh.read())
        num_rc = sum(
            1
            for kind in chassis.interconnects.values()
            if kind is NodeKind.ROOT_COMPLEX
        )
        return MachineSpec(
            name=chassis.name,
            chassis=chassis,
            cpu=XEON_GOLD_5320,
            gpu=A100_40GB,
            ssd=P5510,
            num_sockets=max(1, num_rc),
        )

    raise KeyError(f"unknown machine {name!r}; known: {_known()}")


def _register_builtins() -> None:
    from repro.hardware import machines

    register_machine(
        "machine_a",
        machines.machine_a,
        description="balanced PCIe topology (Figure 1)",
        aliases=("a",),
    )
    register_machine(
        "machine_b",
        machines.machine_b,
        description="cascaded PCIe topology (Figure 2)",
        aliases=("b",),
    )
    register_machine(
        "cluster_c",
        machines.cluster_c,
        kind="cluster",
        description="four-node DistDGL cluster (analytic model)",
    )


_register_builtins()
