"""CLI: describe the built-in machines or a custom chassis file.

Usage::

    python -m repro.hardware                 # list machines
    python -m repro.hardware a               # describe Machine A
    python -m repro.hardware b --layout c    # topology of layout (c)
    python -m repro.hardware my_server.txt   # parse + describe a file
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.hardware.machines import classic_layouts, machine_a, machine_b
from repro.hardware.pcie import parse_chassis, render_chassis


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.hardware")
    parser.add_argument(
        "target", nargs="?",
        help="'a', 'b', or a path to a chassis description file",
    )
    parser.add_argument(
        "--layout", choices=["a", "b", "c", "d"],
        help="also print the runtime topology of a classic layout",
    )
    args = parser.parse_args(argv)

    if not args.target:
        print("built-in machines: a (balanced), b (cascaded)")
        print("or pass a chassis description file (see repro.hardware.pcie)")
        return 0

    if args.target in ("a", "b"):
        machine = machine_a() if args.target == "a" else machine_b()
        print(render_chassis(machine.chassis))
        if args.layout:
            placement = classic_layouts(machine)[args.layout]
            print(machine.build(placement).describe())
        return 0

    path = pathlib.Path(args.target)
    if not path.exists():
        print(f"error: no such machine or file: {args.target}", file=sys.stderr)
        return 1
    chassis = parse_chassis(path.read_text())
    print(render_chassis(chassis))
    return 0


if __name__ == "__main__":
    sys.exit(main())
