"""CLI: enumerate and describe machines from the hardware registry.

Usage::

    python -m repro.hardware                    # list registered machines
    python -m repro.hardware list               # same
    python -m repro.hardware a                  # describe Machine A
    python -m repro.hardware b --layout c       # topology of layout (c)
    python -m repro.hardware gen:7              # a generated fabric
    python -m repro.hardware my_fabric.json     # a fabric spec file
    python -m repro.hardware my_server.txt      # a chassis text file
    python -m repro.hardware gen:7 --json       # dump the fabric spec

Targets resolve through :func:`repro.hardware.registry.get_machine`,
so generated (``gen:<seed>``) and spec-file fabrics are first-class
citizens next to the paper's built-in machines.
"""

from __future__ import annotations

import argparse
import sys

from repro.hardware.machines import classic_layouts
from repro.hardware.pcie import render_chassis
from repro.hardware.registry import get_machine, list_machines


def _print_list() -> None:
    print("registered machines:")
    for entry in list_machines():
        desc = f" — {entry.description}" if entry.description else ""
        kind = f" [{entry.kind}]" if entry.kind != "machine" else ""
        print(f"  {entry.name}{kind}{desc}")
    print("also accepted: gen:<seed> (generated fabric), a repro.fabric/v1")
    print("JSON file, or a chassis description file (repro.hardware.pcie)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.hardware")
    parser.add_argument(
        "target",
        nargs="?",
        help="'list', a registered machine name, 'gen:<seed>', or a "
        "path to a fabric JSON / chassis text file",
    )
    parser.add_argument(
        "--layout",
        choices=["a", "b", "c", "d"],
        help="also print the runtime topology of a classic layout "
        "(machines with the paper's bays/slots groups only)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="dump the machine's declarative fabric spec as JSON "
        "(machines compiled from a FabricSpec only)",
    )
    args = parser.parse_args(argv)

    if not args.target or args.target == "list":
        _print_list()
        return 0

    try:
        machine = get_machine(args.target)
    except (KeyError, ValueError) as err:
        # Cluster specs have no chassis to render; report them directly.
        from repro.hardware.registry import _ALIASES, _REGISTRY

        entry = _REGISTRY.get(_ALIASES.get(args.target, args.target))
        if entry is not None and entry.kind != "machine":
            print(entry.factory())
            return 0
        msg = err.args[0] if err.args else str(err)
        print(f"error: {msg}", file=sys.stderr)
        return 1

    if args.json:
        spec = machine.fabric_spec
        if spec is None:
            print(
                f"error: {machine.name!r} was not compiled from a fabric "
                "spec (no JSON form)",
                file=sys.stderr,
            )
            return 1
        print(spec.to_json())
        return 0

    print(render_chassis(machine.chassis))
    if args.layout:
        try:
            placement = classic_layouts(machine)[args.layout]
        except (KeyError, ValueError) as err:
            print(
                f"error: classic layouts need the paper's slot groups "
                f"({err})",
                file=sys.stderr,
            )
            return 1
        print(machine.build(placement).describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
