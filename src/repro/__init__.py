"""repro — reproduction of *Moment* (SC '25).

Moment co-optimizes a multi-GPU server's physical communication
topology (which PCIe slot each GPU/SSD occupies) and graph-data
placement (which memory tier holds each vertex embedding) for
out-of-core GNN training.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the per-figure reproduction record.

Quickstart::

    from repro import machine_a, MomentOptimizer
    machine = machine_a()
    plan = MomentOptimizer(machine, num_gpus=4, num_ssds=8).optimize(dataset)
"""

from repro.core import (
    Chassis,
    Placement,
    SlotGroup,
    Topology,
    TrafficDemand,
    build_topology,
    dedupe_placements,
    enumerate_placements,
    min_completion_time,
    plain_max_flow,
)
from repro.hardware import (
    MachineSpec,
    classic_layouts,
    cluster_c,
    machine_a,
    machine_b,
    moment_paper_layout_b,
)
from repro.core.optimizer import MomentOptimizer, MomentPlan, OptimizerConfig
from repro.runtime.system import MomentSystem, SystemResult

__version__ = "1.0.0"

__all__ = [
    "Chassis",
    "Placement",
    "SlotGroup",
    "Topology",
    "TrafficDemand",
    "build_topology",
    "dedupe_placements",
    "enumerate_placements",
    "min_completion_time",
    "plain_max_flow",
    "MachineSpec",
    "classic_layouts",
    "cluster_c",
    "machine_a",
    "machine_b",
    "moment_paper_layout_b",
    "MomentOptimizer",
    "MomentPlan",
    "OptimizerConfig",
    "MomentSystem",
    "SystemResult",
    "__version__",
]
