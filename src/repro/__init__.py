"""repro — reproduction of *Moment* (SC '25).

Moment co-optimizes a multi-GPU server's physical communication
topology (which PCIe slot each GPU/SSD occupies) and graph-data
placement (which memory tier holds each vertex embedding) for
out-of-core GNN training.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the per-figure reproduction record.

Quickstart::

    from repro import MomentSystem, RunSpec, machine_a, run
    result = run(MomentSystem(machine_a()), RunSpec(dataset=dataset))
"""

from repro.core import (
    Chassis,
    Placement,
    SlotGroup,
    Topology,
    TrafficDemand,
    build_topology,
    dedupe_placements,
    enumerate_placements,
    min_completion_time,
    plain_max_flow,
)
from repro.hardware import (
    MachineSpec,
    classic_layouts,
    cluster_c,
    machine_a,
    machine_b,
    moment_paper_layout_b,
)
from repro.core.optimizer import MomentOptimizer, MomentPlan, OptimizerConfig
from repro.faults import FaultSchedule
from repro.runtime.spec import RunSpec
from repro.runtime.system import MomentSystem, SystemResult
from repro.api import run
from repro.warehouse import RunTable

__version__ = "1.0.0"

__all__ = [
    "Chassis",
    "Placement",
    "SlotGroup",
    "Topology",
    "TrafficDemand",
    "build_topology",
    "dedupe_placements",
    "enumerate_placements",
    "min_completion_time",
    "plain_max_flow",
    "MachineSpec",
    "classic_layouts",
    "cluster_c",
    "machine_a",
    "machine_b",
    "moment_paper_layout_b",
    "MomentOptimizer",
    "MomentPlan",
    "OptimizerConfig",
    "MomentSystem",
    "SystemResult",
    "RunSpec",
    "FaultSchedule",
    "RunTable",
    "run",
    "__version__",
]
