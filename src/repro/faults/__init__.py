"""Fault injection for degradation-aware training (ROADMAP: graceful
degradation).

Public surface:

* fault models — :class:`SsdFailure`, :class:`SsdSlowdown`,
  :class:`LinkDegrade`, :class:`GpuEvict` (all frozen dataclasses);
* :class:`FaultSchedule` — a deterministic, step-indexed event list with
  a ``--faults`` CLI mini-DSL (:meth:`FaultSchedule.parse`) and a
  seeded generator (:func:`random_schedule`);
* :class:`FaultInjector` / :class:`FaultView` — per-step degraded
  capacity views the :class:`~repro.simulator.pipeline.EpochSimulator`
  consumes.

Import-cycle note: this package imports :mod:`repro.simulator`
submodules at module level; the simulator's ``pipeline`` therefore
imports *us* lazily (inside ``EpochSimulator.__init__``), never at
module scope.
"""

from repro.faults.injector import (
    RECOVERY_BW,
    FaultInjector,
    FaultView,
    recovery_key,
)
from repro.faults.models import (
    Fault,
    GpuEvict,
    LinkDegrade,
    SsdFailure,
    SsdSlowdown,
)
from repro.faults.schedule import FaultSchedule, random_schedule

__all__ = [
    "Fault",
    "SsdFailure",
    "SsdSlowdown",
    "LinkDegrade",
    "GpuEvict",
    "FaultSchedule",
    "random_schedule",
    "FaultInjector",
    "FaultView",
    "RECOVERY_BW",
    "recovery_key",
]
