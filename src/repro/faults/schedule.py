"""Deterministic, seeded fault schedules.

A :class:`FaultSchedule` is an immutable, step-indexed collection of
:mod:`repro.faults.models` events that the
:class:`~repro.simulator.pipeline.EpochSimulator` consumes step-by-step.
Determinism contract: the schedule is a pure value — the same schedule
(and the same simulator seed) reproduces bit-identical epoch results,
and an *empty* schedule reproduces the fault-free code path exactly.

Two construction paths beyond the literal constructor:

* :meth:`FaultSchedule.parse` — the ``--faults SPEC`` mini-DSL used by
  the experiments CLI: semicolon-separated ``kind@step:target[:param]``
  events, e.g. ``"ssd_failure@4:ssd2;link_degrade@6:rc0-plx0:0.25"``.
* :func:`random_schedule` — a seeded random draw over a topology's
  components, for fuzz-style robustness sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.faults.models import (
    Fault,
    GpuEvict,
    LinkDegrade,
    SsdFailure,
    SsdSlowdown,
)
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable sequence of fault events plus the seed that (for
    generated schedules) produced it.  ``seed`` is carried so run
    records can reproduce the schedule; hand-built schedules keep 0.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, Fault):
                raise TypeError(f"not a fault model: {f!r}")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The no-faults schedule (equivalent to running without one)."""
        return cls()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # ------------------------------------------------------------------
    def active_at(self, step: int) -> Tuple[Fault, ...]:
        """Faults in effect during simulated ``step`` (schedule order)."""
        return tuple(f for f in self.faults if f.active_at(step))

    def activated_at(self, step: int) -> Tuple[Fault, ...]:
        """Faults whose onset is exactly ``step`` (detection events)."""
        return tuple(f for f in self.faults if f.step == step)

    @property
    def first_step(self) -> Optional[int]:
        """Earliest onset step, or None for an empty schedule."""
        return min((f.step for f in self.faults), default=None)

    def describe(self) -> str:
        """Human-readable multi-line summary."""
        if not self.faults:
            return "FaultSchedule(empty)"
        return "\n".join(f.describe() for f in self.faults)

    # ------------------------------------------------------------------
    # the --faults DSL
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultSchedule":
        """Parse the CLI mini-DSL into a schedule.

        Grammar (events split on ``;``)::

            event  := kind '@' step [ '+' duration ] ':' target [ ':' param ]
            kind   := ssd_failure | ssd_slowdown | link_degrade | gpu_evict
            target := node name  (link_degrade: 'src-dst')
            param  := float      (slowdown/degrade factor, evict fraction)

        Examples::

            ssd_failure@4:ssd2
            ssd_slowdown@2+3:ssd0:0.5      # 3 steps of half bandwidth
            link_degrade@6:rc0-plx0:0.25
            gpu_evict@3:gpu1:0.5
        """
        faults = []
        for raw in spec.split(";"):
            event = raw.strip()
            if not event:
                continue
            faults.append(_parse_event(event))
        if not faults:
            raise ValueError(f"fault spec {spec!r} contains no events")
        return cls(faults=tuple(faults))


def _parse_event(event: str) -> Fault:
    try:
        head, rest = event.split("@", 1)
        when, _, body = rest.partition(":")
    except ValueError:
        raise ValueError(
            f"bad fault event {event!r}; expected kind@step:target[:param]"
        ) from None
    if not body:
        raise ValueError(f"fault event {event!r} names no target")
    kind = head.strip().lower()
    when = when.strip()
    duration: Optional[int] = None
    if "+" in when:
        step_s, dur_s = when.split("+", 1)
        step, duration = int(step_s), int(dur_s)
    else:
        step = int(when)
    parts = [p.strip() for p in body.split(":")]
    target = parts[0]
    param = float(parts[1]) if len(parts) > 1 else None

    if kind in ("ssd_failure", "fail"):
        if param is not None:
            raise ValueError(f"{kind} takes no parameter: {event!r}")
        return SsdFailure(ssd=target, step=step, duration=duration)
    if kind in ("ssd_slowdown", "slow"):
        return SsdSlowdown(
            ssd=target,
            step=step,
            factor=0.5 if param is None else param,
            duration=duration,
        )
    if kind in ("link_degrade", "link"):
        if "-" not in target:
            raise ValueError(
                f"link_degrade target must be 'src-dst', got {target!r}"
            )
        src, dst = target.split("-", 1)
        return LinkDegrade(
            src=src,
            dst=dst,
            step=step,
            factor=0.25 if param is None else param,
            duration=duration,
        )
    if kind in ("gpu_evict", "evict"):
        return GpuEvict(
            gpu=target,
            step=step,
            fraction=0.5 if param is None else param,
            duration=duration,
        )
    raise ValueError(
        f"unknown fault kind {kind!r} in {event!r}; known kinds: "
        "ssd_failure, ssd_slowdown, link_degrade, gpu_evict"
    )


def random_schedule(
    ssds: Sequence[str],
    gpus: Sequence[str],
    links: Iterable[Tuple[str, str]] = (),
    num_faults: int = 2,
    max_step: int = 8,
    seed: SeedLike = 0,
) -> FaultSchedule:
    """A seeded random fault draw for robustness sweeps.

    Picks ``num_faults`` events uniformly over the supplied components
    and fault classes; the same seed reproduces the same schedule.
    """
    if num_faults < 1:
        raise ValueError("num_faults must be >= 1")
    rng = ensure_rng(seed)
    link_list = sorted(set(tuple(l) for l in links))
    faults = []
    kinds = ["ssd_failure", "ssd_slowdown", "gpu_evict"]
    if link_list:
        kinds.append("link_degrade")
    for _ in range(num_faults):
        kind = kinds[int(rng.integers(len(kinds)))]
        step = int(rng.integers(max_step))
        if kind == "ssd_failure" and len(ssds):
            faults.append(
                SsdFailure(ssd=ssds[int(rng.integers(len(ssds)))], step=step)
            )
        elif kind == "ssd_slowdown" and len(ssds):
            faults.append(
                SsdSlowdown(
                    ssd=ssds[int(rng.integers(len(ssds)))],
                    step=step,
                    factor=float(rng.uniform(0.2, 0.8)),
                )
            )
        elif kind == "gpu_evict" and len(gpus):
            faults.append(
                GpuEvict(
                    gpu=gpus[int(rng.integers(len(gpus)))],
                    step=step,
                    fraction=float(rng.uniform(0.2, 0.8)),
                )
            )
        elif kind == "link_degrade":
            src, dst = link_list[int(rng.integers(len(link_list)))]
            faults.append(
                LinkDegrade(
                    src=src,
                    dst=dst,
                    step=step,
                    factor=float(rng.uniform(0.1, 0.5)),
                )
            )
    if not faults:
        raise ValueError("no components to draw faults from")
    # int() for the record: numpy seeds aren't JSON-serializable
    seed_val = seed if isinstance(seed, int) else 0
    return FaultSchedule(faults=tuple(faults), seed=seed_val)
