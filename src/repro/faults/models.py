"""Fault models for degradation-aware training (ROADMAP: graceful
degradation).

Each fault targets one hardware component of the runtime topology and
is *time-indexed in simulated steps*: it activates at ``step`` and —
unless ``duration`` bounds it — stays active for the rest of the run.
The models mirror the failure classes the out-of-core GNN literature
actually observes on multi-GPU storage servers:

* :class:`SsdFailure` — a drive drops off the bus entirely.  Reads
  against it time out (K retries with backoff, see
  :class:`repro.simulator.iostack.RetryPolicy`), after which its pages
  are served from the surviving replica tier at a bounded recovery
  bandwidth until a replan migrates them.
* :class:`SsdSlowdown` — thermal throttling / internal GC: the drive's
  effective egress bandwidth scales by ``factor``.
* :class:`LinkDegrade` — a PCIe link trains down (x16 -> x4) or a QPI
  path saturates: both directions of the physical link scale by
  ``factor``.
* :class:`GpuEvict` — HBM pressure (fragmentation, a co-tenant job)
  evicts ``fraction`` of one GPU's embedding cache; the evicted share
  of local hits turns into CPU-memory reads.

All models are frozen dataclasses so schedules hash/compare cleanly and
survive pickling into search workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.utils.validation import check_positive


class Fault:
    """Common behaviour of all fault models (not a dataclass itself:
    subclasses order their target fields before ``step``/``duration``).
    """

    #: Short machine-readable class tag (also the ``--faults`` DSL verb).
    kind: str = "fault"

    # subclasses provide these as dataclass fields
    step: int
    duration: Optional[int]

    def _check_timing(self) -> None:
        if self.step < 0:
            raise ValueError(f"fault step must be >= 0, got {self.step}")
        if self.duration is not None:
            check_positive("duration", self.duration)

    def active_at(self, step: int) -> bool:
        """Whether this fault is in effect during simulated ``step``."""
        if step < self.step:
            return False
        if self.duration is None:
            return True
        return step < self.step + self.duration

    @property
    def target(self) -> str:
        """The affected component's node name (reporting label)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable form (also the DSL round-trip)."""
        tail = "" if self.duration is None else f" for {self.duration} steps"
        return f"{self.kind}@{self.step}: {self.target}{tail}"


def _check_factor(name: str, value: float) -> None:
    """Degradation factors scale a positive capacity: (0, 1]."""
    if not (0.0 < value <= 1.0):
        raise ValueError(f"{name} must be in (0, 1], got {value}")


@dataclass(frozen=True)
class SsdFailure(Fault):
    """A drive fails hard at ``step`` (duration-bounded = offline/online)."""

    ssd: str
    step: int
    duration: Optional[int] = None

    kind = "ssd_failure"

    def __post_init__(self) -> None:
        self._check_timing()

    @property
    def target(self) -> str:
        return self.ssd


@dataclass(frozen=True)
class SsdSlowdown(Fault):
    """A drive's egress bandwidth scales by ``factor`` while active."""

    ssd: str
    step: int
    factor: float = 0.5
    duration: Optional[int] = None

    kind = "ssd_slowdown"

    def __post_init__(self) -> None:
        self._check_timing()
        _check_factor("factor", self.factor)

    @property
    def target(self) -> str:
        return self.ssd


@dataclass(frozen=True)
class LinkDegrade(Fault):
    """Both directions of the physical link ``src <-> dst`` scale by
    ``factor`` (PCIe lane down-training, QPI contention)."""

    src: str
    dst: str
    step: int
    factor: float = 0.25
    duration: Optional[int] = None

    kind = "link_degrade"

    def __post_init__(self) -> None:
        self._check_timing()
        _check_factor("factor", self.factor)

    @property
    def target(self) -> str:
        return f"{self.src}-{self.dst}"

    @property
    def directed_keys(self) -> Tuple[Tuple[str, str], ...]:
        """Both directed (src, dst) pairs the degradation applies to."""
        return ((self.src, self.dst), (self.dst, self.src))


@dataclass(frozen=True)
class GpuEvict(Fault):
    """``fraction`` of one GPU's embedding cache is evicted while
    active: that share of local hits is served from CPU memory."""

    gpu: str
    step: int
    fraction: float = 0.5
    duration: Optional[int] = None

    kind = "gpu_evict"

    def __post_init__(self) -> None:
        self._check_timing()
        _check_factor("fraction", self.fraction)

    @property
    def target(self) -> str:
        return self.gpu
