"""Step-by-step fault injection against a runtime topology.

:class:`FaultInjector` turns a :class:`~repro.faults.schedule.FaultSchedule`
into per-step :class:`FaultView` objects the epoch simulator consumes:
a degraded copy of the fair-share capacity dict, the set of failed
drives (whose reads must re-route to the surviving replica tier), and
per-GPU cache-eviction fractions.

Degradation semantics per fault class:

* ``SsdFailure`` — the drive's egress resource is *removed* (the
  max-min allocator requires strictly positive capacities; a dead
  resource must disappear, not go to zero) and a synthetic
  ``("recovery", ssd)`` resource with ``recovery_bw`` capacity is
  added: until a replan migrates the drive's pages, they are served
  from the surviving replica tier (host-side origin copy) through that
  bounded recovery path.
* ``SsdSlowdown`` — the drive's (IOPS-capped) egress capacity scales
  by ``factor``.
* ``LinkDegrade`` — both directed ``("link", src, dst)`` resources
  scale by ``factor``.
* ``GpuEvict`` — no capacity change; the view carries the per-GPU
  evicted fraction and the simulator turns that share of local cache
  hits into CPU-memory reads.

Views are cached per active-fault signature, so a long run with a
static fault set builds the degraded capacity dict once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Tuple

from repro.core.topology import Topology, TopologyMask
from repro.faults.models import (
    Fault,
    GpuEvict,
    LinkDegrade,
    SsdFailure,
    SsdSlowdown,
)
from repro.faults.schedule import FaultSchedule
from repro.simulator.bandwidth import degrade_capacities
from repro.simulator.routing import egress_key, link_key
from repro.utils.validation import check_positive

#: Bandwidth of the degraded recovery path serving a failed drive's
#: pages from the surviving replica tier (host-side origin copy).  Far
#: below a healthy NVMe drive on purpose: without replanning, training
#: throughput collapses onto this bottleneck.
RECOVERY_BW = 1.5e9


def recovery_key(ssd: str) -> Tuple[str, str]:
    """Resource key of a failed drive's replica-recovery path."""
    return ("recovery", ssd)


@dataclass
class FaultView:
    """Everything the simulator needs to know about one step's faults."""

    step: int
    #: All faults in effect this step (schedule order).
    active: Tuple[Fault, ...]
    #: Faults whose onset is exactly this step (detection events —
    #: these are what incur the retry/timeout stall).
    activated: Tuple[Fault, ...]
    #: Degraded capacity dict (failed egress removed, recovery added).
    capacities: Dict[Hashable, float]
    #: Drives that are hard-failed this step.
    failed_ssds: FrozenSet[str] = frozenset()
    #: gpu name -> evicted fraction of its embedding cache.
    evict_fraction: Dict[str, float] = field(default_factory=dict)

    @property
    def is_degraded(self) -> bool:
        """Whether anything is actually degraded this step."""
        return bool(self.active)


class FaultInjector:
    """Maps schedule steps to degraded capacity views for one topology."""

    def __init__(
        self,
        topo: Topology,
        schedule: FaultSchedule,
        base_capacities: Dict[Hashable, float],
        recovery_bw: float = RECOVERY_BW,
    ) -> None:
        check_positive("recovery_bw", recovery_bw)
        self.topo = topo
        self.schedule = schedule
        self.base_capacities = dict(base_capacities)
        self.recovery_bw = recovery_bw
        self._validate_targets()
        self._views: Dict[Tuple, FaultView] = {}

    def _validate_targets(self) -> None:
        ssds = set(self.topo.ssds())
        gpus = set(self.topo.gpus())
        for f in self.schedule:
            if isinstance(f, (SsdFailure, SsdSlowdown)):
                if f.ssd not in ssds:
                    raise ValueError(
                        f"{f.kind} targets unknown drive {f.ssd!r}; "
                        f"topology has {sorted(ssds)}"
                    )
            elif isinstance(f, LinkDegrade):
                if not self.topo.has_link(f.src, f.dst):
                    raise ValueError(
                        f"link_degrade targets unknown link "
                        f"{f.src!r}->{f.dst!r}"
                    )
            elif isinstance(f, GpuEvict):
                if f.gpu not in gpus:
                    raise ValueError(
                        f"gpu_evict targets unknown GPU {f.gpu!r}; "
                        f"topology has {sorted(gpus)}"
                    )

    # ------------------------------------------------------------------
    def view(self, step: int) -> FaultView:
        """The fault view for simulated ``step`` (cached per signature)."""
        active = self.schedule.active_at(step)
        activated = tuple(
            f for f in self.schedule.activated_at(step) if f in active
        )
        key = (active, bool(activated))
        cached = self._views.get(key)
        if cached is not None and cached.activated == activated:
            # same degradation signature: reuse the capacity dict, fix
            # up the step index for reporting
            return FaultView(
                step=step,
                active=active,
                activated=activated,
                capacities=cached.capacities,
                failed_ssds=cached.failed_ssds,
                evict_fraction=cached.evict_fraction,
            )
        built = self._build_view(step, active, activated)
        self._views[key] = built
        return built

    def _build_view(
        self,
        step: int,
        active: Tuple[Fault, ...],
        activated: Tuple[Fault, ...],
    ) -> FaultView:
        scale: Dict[Hashable, float] = {}
        drop = []
        add: Dict[Hashable, float] = {}
        failed = set()
        evict: Dict[str, float] = {}
        for f in active:
            if isinstance(f, SsdFailure):
                failed.add(f.ssd)
                drop.append(egress_key(f.ssd))
                add[recovery_key(f.ssd)] = self.recovery_bw
            elif isinstance(f, SsdSlowdown):
                k = egress_key(f.ssd)
                scale[k] = scale.get(k, 1.0) * f.factor
            elif isinstance(f, LinkDegrade):
                for src, dst in f.directed_keys:
                    if (
                        link_key(src, dst) in self.base_capacities
                    ):
                        k = link_key(src, dst)
                        scale[k] = scale.get(k, 1.0) * f.factor
            elif isinstance(f, GpuEvict):
                evict[f.gpu] = max(evict.get(f.gpu, 0.0), f.fraction)
        capacities = degrade_capacities(
            self.base_capacities, scale=scale, drop=drop, add=add
        )
        return FaultView(
            step=step,
            active=active,
            activated=activated,
            capacities=capacities,
            failed_ssds=frozenset(failed),
            evict_fraction=evict,
        )

    # ------------------------------------------------------------------
    def mask_at(self, step: int) -> TopologyMask:
        """The :class:`~repro.core.topology.TopologyMask` describing the
        surviving fabric at ``step`` — the replan policy re-runs the
        placement search against this mask.
        """
        active = self.schedule.active_at(step)
        drop = []
        egress = []
        links = []
        for f in active:
            if isinstance(f, SsdFailure):
                drop.append(f.ssd)
            elif isinstance(f, SsdSlowdown):
                egress.append((f.ssd, f.factor))
            elif isinstance(f, LinkDegrade):
                for src, dst in f.directed_keys:
                    links.append((src, dst, f.factor))
        return TopologyMask(
            drop_nodes=tuple(sorted(set(drop))),
            egress_factors=tuple(sorted(egress)),
            link_factors=tuple(sorted(links)),
        )

    def evictions_at(self, step: int) -> Dict[str, float]:
        """gpu -> evicted cache fraction at ``step`` (for replanning)."""
        return dict(self.view(step).evict_fraction)
